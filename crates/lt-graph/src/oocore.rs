//! Out-of-core compressed CSR substrate (DESIGN.md §16).
//!
//! The paper's real datasets (TW/FS/UK/CW) are billion-edge; a RAM-resident
//! CSR caps what one box can serve. This module extends the paper's
//! traffic-optimization story one tier up: the graph lives on disk in a
//! **partition-granular compressed** form — delta+varint adjacency per
//! vertex, grouped into small fixed-vertex-count chunks with a per-partition
//! chunk directory — written once and `mmap`-read (`pread` on fallback), so
//! the **OS page cache is the residency policy** for the host tier exactly
//! like the device graph pool is for GPU memory.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "LTOOCGR1" | flags u8 | |V| u64 | |E| u64 | P u32 | block_bytes u64
//! boundaries  u32 × (P+1)          partition vertex ranges
//! part_bytes  u64 × P              uncompressed PartitionData bytes
//! part_edges  u64 × P              edges per partition
//! regions     u64 × (P+1)          absolute byte offset of each region
//! P × region:
//!   chunk_count u32
//!   chunk dir: { first_vertex u32, first_edge u64, payload_off u64 } × chunks
//!   payload: per-vertex rows
//! ```
//!
//! A row for vertex `v` with degree `d` is `varint(d)`, then `d` zigzag
//! varints: the first is `n₀ − v`, the rest successive-neighbor differences
//! — this round-trips **arbitrary** neighbor order exactly (order determines
//! sampling, so the codec must be lossless in order, not just as a set)
//! while compressing the sorted rows the preprocessed generators emit to a
//! few bits per edge. Temporal rows append `varint(t₀)` plus zigzag deltas;
//! weighted rows append `d` raw little-endian `f32`s (incompressible).
//!
//! Chunks hold [`CHUNK_VERTICES`] vertices each and record their absolute
//! first edge, so a partition decode fans out across chunks into disjoint
//! output slices with no cross-chunk scan — the engine's `ExecPool` runs
//! [`decode_chunk`] per chunk in parallel (see `lt-engine`'s host decode
//! cache).

use crate::partition::{PartitionData, PartitionedGraph};
use crate::{Csr, GraphError, VertexId};
use std::fs::File;
use std::io::Write as _;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes of the out-of-core compressed format, revision 1.
pub const OOC_MAGIC: &[u8; 8] = b"LTOOCGR1";

/// Vertices per compressed chunk: small enough that a partition splits
/// into many independently-decodable units for the `ExecPool` fan-out,
/// large enough that the 20-byte directory entry is noise (<0.1 bytes per
/// vertex at typical degrees).
pub const CHUNK_VERTICES: u32 = 256;

const FLAG_WEIGHTED: u8 = 1;
const FLAG_TEMPORAL: u8 = 2;

/// Fixed-size header prefix: magic + flags + |V| + |E| + P + block_bytes.
const HEADER_FIXED: usize = 8 + 1 + 8 + 8 + 4 + 8;

/// Directory entry size: first_vertex u32 + first_edge u64 + payload_off u64.
const DIR_ENTRY: usize = 4 + 8 + 8;

// ---------------------------------------------------------------------------
// varint / zigzag codec
// ---------------------------------------------------------------------------

#[inline]
fn put_varint(mut x: u64, out: &mut Vec<u8>) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Decode one LEB128 varint at `*pos`, advancing it. `None` on truncation.
#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        x |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

// ---------------------------------------------------------------------------
// Row encode / decode
// ---------------------------------------------------------------------------

/// Append the compressed row of vertex `v` to `out`.
fn encode_row(
    v: VertexId,
    neighbors: &[VertexId],
    weights: Option<&[f32]>,
    timestamps: Option<&[u32]>,
    out: &mut Vec<u8>,
) {
    put_varint(neighbors.len() as u64, out);
    let mut prev = v as i64;
    for &n in neighbors {
        put_varint(zigzag(n as i64 - prev), out);
        prev = n as i64;
    }
    if let Some(ts) = timestamps {
        if let Some((&first, rest)) = ts.split_first() {
            put_varint(u64::from(first), out);
            let mut prev = first as i64;
            for &t in rest {
                put_varint(zigzag(t as i64 - prev), out);
                prev = t as i64;
            }
        }
    }
    if let Some(ws) = weights {
        for w in ws {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
}

fn truncated() -> GraphError {
    GraphError::Format("out-of-core payload truncated".into())
}

// ---------------------------------------------------------------------------
// Chunk plans
// ---------------------------------------------------------------------------

/// One independently-decodable unit of a partition region: a contiguous run
/// of vertex rows plus where its output lands.
#[derive(Clone, Debug)]
pub struct ChunkPlan {
    /// First vertex of the chunk (global id, inclusive).
    pub v_start: VertexId,
    /// Last vertex of the chunk (global id, exclusive).
    pub v_end: VertexId,
    /// Index of the chunk's first edge, relative to the partition start.
    pub first_edge: u64,
    /// Number of edges in the chunk.
    pub num_edges: u64,
    /// Byte offset of the chunk's first row within the region.
    payload_start: usize,
}

/// Parse a partition region's chunk directory into decode plans.
///
/// `v_start..v_end` is the partition's vertex range and `part_edges` its
/// edge count (both from the file header); they bound the directory so a
/// corrupt region fails cleanly instead of mis-slicing output buffers.
pub fn parse_chunk_plans(
    region: &[u8],
    v_start: VertexId,
    v_end: VertexId,
    part_edges: u64,
) -> Result<Vec<ChunkPlan>, GraphError> {
    if region.len() < 4 {
        return Err(truncated());
    }
    let count = u32::from_le_bytes(region[0..4].try_into().unwrap()) as usize;
    let dir_end = 4 + count * DIR_ENTRY;
    if region.len() < dir_end {
        return Err(truncated());
    }
    let expect = (v_end - v_start).div_ceil(CHUNK_VERTICES).max(1) as usize;
    if count != expect {
        return Err(GraphError::Format(format!(
            "chunk directory has {count} entries, partition needs {expect}"
        )));
    }
    let mut plans = Vec::with_capacity(count);
    for i in 0..count {
        let e = 4 + i * DIR_ENTRY;
        let first_vertex = u32::from_le_bytes(region[e..e + 4].try_into().unwrap());
        let first_edge = u64::from_le_bytes(region[e + 4..e + 12].try_into().unwrap());
        let payload_off = u64::from_le_bytes(region[e + 12..e + 20].try_into().unwrap());
        let payload_start = dir_end
            .checked_add(payload_off as usize)
            .filter(|&p| p <= region.len())
            .ok_or_else(truncated)?;
        plans.push(ChunkPlan {
            v_start: first_vertex,
            v_end: first_vertex, // patched below
            first_edge,
            num_edges: 0, // patched below
            payload_start,
        });
    }
    for i in 0..count {
        let (next_v, next_e) = if i + 1 < count {
            (plans[i + 1].v_start, plans[i + 1].first_edge)
        } else {
            (v_end, part_edges)
        };
        let p = &mut plans[i];
        if next_v < p.v_start || next_e < p.first_edge || p.v_start < v_start || next_v > v_end {
            return Err(GraphError::Format(
                "chunk directory is not monotone over the partition range".into(),
            ));
        }
        p.v_end = next_v;
        p.num_edges = next_e - p.first_edge;
    }
    Ok(plans)
}

/// Decode one chunk into pre-split output slices.
///
/// `offsets` receives one entry per chunk vertex: the partition-relative
/// edge start of each row (the caller writes the final `offsets[n] =
/// part_edges` sentinel once, after all chunks). `edges` (and the optional
/// `weights`/`timestamps`) are the slices `[first_edge .. first_edge +
/// num_edges)` of the partition's output buffers — disjoint across chunks,
/// so a parallel decode needs no synchronization.
pub fn decode_chunk(
    region: &[u8],
    plan: &ChunkPlan,
    weighted: bool,
    temporal: bool,
    offsets: &mut [u64],
    edges: &mut [VertexId],
    mut weights: Option<&mut [f32]>,
    mut timestamps: Option<&mut [u32]>,
) -> Result<(), GraphError> {
    debug_assert_eq!(offsets.len(), (plan.v_end - plan.v_start) as usize);
    debug_assert_eq!(edges.len() as u64, plan.num_edges);
    let mut pos = plan.payload_start;
    let mut edge_cursor = 0usize;
    for (li, v) in (plan.v_start..plan.v_end).enumerate() {
        offsets[li] = plan.first_edge + edge_cursor as u64;
        let d = get_varint(region, &mut pos).ok_or_else(truncated)? as usize;
        if edge_cursor + d > edges.len() {
            return Err(GraphError::Format(
                "row degrees exceed the chunk's edge count".into(),
            ));
        }
        let row = &mut edges[edge_cursor..edge_cursor + d];
        let mut prev = v as i64;
        for slot in row.iter_mut() {
            let delta = unzigzag(get_varint(region, &mut pos).ok_or_else(truncated)?);
            prev += delta;
            *slot = VertexId::try_from(prev)
                .map_err(|_| GraphError::Format("decoded neighbor out of u32 range".into()))?;
        }
        if temporal {
            if let Some(ts) = timestamps.as_deref_mut() {
                let row = &mut ts[edge_cursor..edge_cursor + d];
                if let Some((first, rest)) = row.split_first_mut() {
                    let t0 = get_varint(region, &mut pos).ok_or_else(truncated)?;
                    *first = u32::try_from(t0)
                        .map_err(|_| GraphError::Format("timestamp out of u32 range".into()))?;
                    let mut prev = *first as i64;
                    for slot in rest {
                        prev += unzigzag(get_varint(region, &mut pos).ok_or_else(truncated)?);
                        *slot = u32::try_from(prev).map_err(|_| {
                            GraphError::Format("timestamp out of u32 range".into())
                        })?;
                    }
                }
            }
        }
        if weighted {
            if let Some(ws) = weights.as_deref_mut() {
                let row = &mut ws[edge_cursor..edge_cursor + d];
                let end = pos + 4 * d;
                if end > region.len() {
                    return Err(truncated());
                }
                for (slot, raw) in row.iter_mut().zip(region[pos..end].chunks_exact(4)) {
                    *slot = f32::from_le_bytes(raw.try_into().unwrap());
                }
                pos = end;
            }
        }
        edge_cursor += d;
    }
    if edge_cursor as u64 != plan.num_edges {
        return Err(GraphError::Format(
            "chunk decoded a different edge count than its directory entry".into(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Write `pg` (a RAM-resident partitioning) as an out-of-core compressed
/// file at `path`. Returns the total file size in bytes.
///
/// Each partition is extracted **once** and encoded region by region; the
/// header's `part_bytes` records the uncompressed [`PartitionData::bytes`]
/// so engine-side H2D charges are identical between substrates.
pub fn write_oocore(pg: &PartitionedGraph, path: &Path) -> Result<u64, GraphError> {
    let csr = pg.csr();
    let p = pg.num_partitions() as usize;
    let flags = (u8::from(csr.is_weighted()) * FLAG_WEIGHTED)
        | (u8::from(csr.is_temporal()) * FLAG_TEMPORAL);

    let mut regions = Vec::with_capacity(p + 1);
    let mut part_bytes = Vec::with_capacity(p);
    let mut part_edges = Vec::with_capacity(p);
    let mut body: Vec<u8> = Vec::new();
    let header_len = HEADER_FIXED + 4 * (p + 1) + 8 * p + 8 * p + 8 * (p + 1);
    for part in 0..p as u32 {
        regions.push(header_len as u64 + body.len() as u64);
        let data = pg.extract(part);
        part_bytes.push(data.bytes());
        part_edges.push(data.edges.len() as u64);
        encode_region(&data, &mut body);
    }
    regions.push(header_len as u64 + body.len() as u64);

    let mut header: Vec<u8> = Vec::with_capacity(header_len);
    header.extend_from_slice(OOC_MAGIC);
    header.push(flags);
    header.extend_from_slice(&csr.num_vertices().to_le_bytes());
    header.extend_from_slice(&csr.num_edges().to_le_bytes());
    header.extend_from_slice(&pg.num_partitions().to_le_bytes());
    header.extend_from_slice(&pg.block_bytes().to_le_bytes());
    for &b in pg.boundaries() {
        header.extend_from_slice(&b.to_le_bytes());
    }
    for &b in &part_bytes {
        header.extend_from_slice(&b.to_le_bytes());
    }
    for &e in &part_edges {
        header.extend_from_slice(&e.to_le_bytes());
    }
    for &r in &regions {
        header.extend_from_slice(&r.to_le_bytes());
    }
    debug_assert_eq!(header.len(), header_len);

    let mut f = File::create(path)?;
    f.write_all(&header)?;
    f.write_all(&body)?;
    f.sync_all()?;
    Ok(header.len() as u64 + body.len() as u64)
}

/// Encode one partition's region (chunk directory + payload) onto `out`.
fn encode_region(data: &PartitionData, out: &mut Vec<u8>) {
    let n = data.v_end - data.v_start;
    let chunks = n.div_ceil(CHUNK_VERTICES).max(1);
    out.extend_from_slice(&chunks.to_le_bytes());
    let dir_start = out.len();
    out.resize(dir_start + chunks as usize * DIR_ENTRY, 0);
    let payload_base = out.len();
    for c in 0..chunks {
        let v_lo = data.v_start + c * CHUNK_VERTICES;
        let v_hi = (v_lo + CHUNK_VERTICES).min(data.v_end);
        let first_edge = data.offsets[(v_lo - data.v_start) as usize];
        let payload_off = (out.len() - payload_base) as u64;
        let e = dir_start + c as usize * DIR_ENTRY;
        out[e..e + 4].copy_from_slice(&v_lo.to_le_bytes());
        out[e + 4..e + 12].copy_from_slice(&first_edge.to_le_bytes());
        out[e + 12..e + 20].copy_from_slice(&payload_off.to_le_bytes());
        for v in v_lo..v_hi {
            encode_row(
                v,
                data.neighbors(v),
                data.neighbor_weights(v),
                data.neighbor_timestamps(v),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// mmap / pread backing
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mm {
    /// Read-only private mapping of a whole file. Dropping unmaps.
    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared
    // bytes, safe to read from any thread.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    extern "C" {
        fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    impl Mapping {
        /// Map `len` bytes of `fd` read-only. `None` if the kernel refuses
        /// (callers fall back to `pread`).
        pub fn new(fd: i32, len: usize) -> Option<Mapping> {
            if len == 0 {
                return None;
            }
            // SAFETY: requesting a fresh read-only private mapping of a
            // file we hold open; the kernel validates fd/len and we check
            // for MAP_FAILED.
            let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0) };
            if ptr as isize == -1 {
                None
            } else {
                Some(Mapping { ptr, len })
            }
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping for the
            // lifetime of self.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly the region mmap returned.
            unsafe {
                munmap(self.ptr as *mut u8, self.len);
            }
        }
    }
}

enum Backing {
    /// The whole file is mapped; reads hit the OS page cache directly.
    #[cfg(unix)]
    Mmap(mm::Mapping),
    /// Positional reads into a transient buffer per region.
    Pread(File),
}

/// How [`OocGraph::open_with`] should back its reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OocBacking {
    /// `mmap` when the platform and kernel allow it, else `pread`. The
    /// `LT_OOC_NO_MMAP` environment variable forces the fallback (CI
    /// exercises both paths).
    Auto,
    /// Positional reads only.
    Pread,
}

#[cfg(unix)]
fn read_exact_at(f: &File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, off)
}

#[cfg(not(unix))]
fn read_exact_at(f: &File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    // No positional-read API: emulate with seek on a cloned handle so
    // concurrent readers do not race one shared cursor.
    use std::io::{Read, Seek, SeekFrom};
    let mut f = f.try_clone()?;
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(buf)
}

/// A partition region's bytes: borrowed from the mapping or owned from a
/// positional read.
pub enum Region<'a> {
    Borrowed(&'a [u8]),
    Owned(Vec<u8>),
}

impl Deref for Region<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Region::Borrowed(b) => b,
            Region::Owned(v) => v,
        }
    }
}

// ---------------------------------------------------------------------------
// OocGraph
// ---------------------------------------------------------------------------

/// An opened out-of-core compressed graph: the header and partition table
/// live in RAM, adjacency stays on disk until a partition is decoded.
pub struct OocGraph {
    backing: Backing,
    weighted: bool,
    temporal: bool,
    num_vertices: u64,
    num_edges: u64,
    block_bytes: u64,
    boundaries: Vec<VertexId>,
    part_bytes: Vec<u64>,
    part_edges: Vec<u64>,
    regions: Vec<u64>,
}

impl OocGraph {
    /// Open with the default backing policy ([`OocBacking::Auto`]).
    pub fn open(path: &Path) -> Result<OocGraph, GraphError> {
        Self::open_with(path, OocBacking::Auto)
    }

    /// Open `path`, validating the header and partition table.
    pub fn open_with(path: &Path, mode: OocBacking) -> Result<OocGraph, GraphError> {
        let f = File::open(path)?;
        let mut fixed = [0u8; HEADER_FIXED];
        read_exact_at(&f, &mut fixed, 0)?;
        if &fixed[0..8] != OOC_MAGIC {
            return Err(GraphError::Format(
                "bad magic (not an out-of-core graph file)".into(),
            ));
        }
        let flags = fixed[8];
        let num_vertices = u64::from_le_bytes(fixed[9..17].try_into().unwrap());
        let num_edges = u64::from_le_bytes(fixed[17..25].try_into().unwrap());
        let p = u32::from_le_bytes(fixed[25..29].try_into().unwrap()) as usize;
        let block_bytes = u64::from_le_bytes(fixed[29..37].try_into().unwrap());
        if p == 0 || num_vertices == 0 {
            return Err(GraphError::Format("empty partition table".into()));
        }
        let table_len = 4 * (p + 1) + 8 * p + 8 * p + 8 * (p + 1);
        let mut table = vec![0u8; table_len];
        read_exact_at(&f, &mut table, HEADER_FIXED as u64)?;
        let mut pos = 0usize;
        let take_u32 = |t: &[u8], pos: &mut usize| {
            let v = u32::from_le_bytes(t[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            v
        };
        let boundaries: Vec<VertexId> = (0..=p).map(|_| take_u32(&table, &mut pos)).collect();
        let take_u64 = |t: &[u8], pos: &mut usize| {
            let v = u64::from_le_bytes(t[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            v
        };
        let part_bytes: Vec<u64> = (0..p).map(|_| take_u64(&table, &mut pos)).collect();
        let part_edges: Vec<u64> = (0..p).map(|_| take_u64(&table, &mut pos)).collect();
        let regions: Vec<u64> = (0..=p).map(|_| take_u64(&table, &mut pos)).collect();
        if boundaries[0] != 0
            || boundaries[p] as u64 != num_vertices
            || boundaries.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(GraphError::Format("partition boundaries not monotone".into()));
        }
        if regions.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Format("region table not monotone".into()));
        }
        if part_edges.iter().sum::<u64>() != num_edges {
            return Err(GraphError::Format(
                "partition edge counts do not sum to |E|".into(),
            ));
        }
        let file_len = f.metadata()?.len();
        if *regions.last().unwrap() != file_len {
            return Err(GraphError::Format("region table exceeds the file".into()));
        }
        let use_mmap = mode == OocBacking::Auto && std::env::var_os("LT_OOC_NO_MMAP").is_none();
        let backing = match use_mmap {
            #[cfg(unix)]
            true => {
                use std::os::unix::io::AsRawFd;
                match mm::Mapping::new(f.as_raw_fd(), file_len as usize) {
                    Some(m) => Backing::Mmap(m),
                    None => Backing::Pread(f),
                }
            }
            _ => Backing::Pread(f),
        };
        Ok(OocGraph {
            backing,
            weighted: flags & FLAG_WEIGHTED != 0,
            temporal: flags & FLAG_TEMPORAL != 0,
            num_vertices,
            num_edges,
            block_bytes,
            boundaries,
            part_bytes,
            part_edges,
            regions,
        })
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    pub fn is_temporal(&self) -> bool {
        self.temporal
    }

    pub fn num_partitions(&self) -> u32 {
        (self.boundaries.len() - 1) as u32
    }

    /// Partition vertex boundaries, length `num_partitions() + 1`.
    pub fn boundaries(&self) -> &[VertexId] {
        &self.boundaries
    }

    /// Partition byte budget the file was partitioned with.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Uncompressed [`PartitionData::bytes`] of partition `p` — what an
    /// H2D copy of the decoded partition transfers.
    pub fn partition_bytes(&self, p: u32) -> u64 {
        self.part_bytes[p as usize]
    }

    /// Edge count of partition `p`.
    pub fn partition_edges(&self, p: u32) -> u64 {
        self.part_edges[p as usize]
    }

    /// Compressed on-disk size of partition `p`'s region.
    pub fn region_bytes(&self, p: u32) -> u64 {
        self.regions[p as usize + 1] - self.regions[p as usize]
    }

    /// Total file size.
    pub fn file_bytes(&self) -> u64 {
        *self.regions.last().unwrap()
    }

    /// What the decoded graph's [`Csr::csr_bytes`] would be — the RAM
    /// footprint this substrate avoids.
    pub fn uncompressed_bytes(&self) -> u64 {
        let per_edge = 4 + u64::from(self.weighted) * 4 + u64::from(self.temporal) * 4;
        (self.num_vertices + 1) * 8 + self.num_edges * per_edge
    }

    /// Which backing the open resolved to (`"mmap"` or `"pread"`).
    pub fn backing_name(&self) -> &'static str {
        match self.backing {
            #[cfg(unix)]
            Backing::Mmap(_) => "mmap",
            Backing::Pread(_) => "pread",
        }
    }

    /// The raw compressed bytes of partition `p`'s region: a zero-copy
    /// slice under mmap, one positional read under pread.
    pub fn region(&self, p: u32) -> Result<Region<'_>, GraphError> {
        let lo = self.regions[p as usize];
        let hi = self.regions[p as usize + 1];
        match &self.backing {
            #[cfg(unix)]
            Backing::Mmap(m) => Ok(Region::Borrowed(&m.as_slice()[lo as usize..hi as usize])),
            Backing::Pread(f) => {
                let mut buf = vec![0u8; (hi - lo) as usize];
                read_exact_at(f, &mut buf, lo)?;
                Ok(Region::Owned(buf))
            }
        }
    }

    /// Chunk decode plans for partition `p`'s region bytes (as returned by
    /// [`OocGraph::region`]).
    pub fn chunk_plans(&self, p: u32, region: &[u8]) -> Result<Vec<ChunkPlan>, GraphError> {
        parse_chunk_plans(
            region,
            self.boundaries[p as usize],
            self.boundaries[p as usize + 1],
            self.part_edges[p as usize],
        )
    }

    /// Decode partition `p` serially into a fresh [`PartitionData`].
    ///
    /// The engine's host decode cache uses the chunk-level API instead to
    /// fan the decode out and recycle buffers; this is the simple path for
    /// tests, `extract`, and [`OocGraph::to_csr`].
    pub fn decode_partition(&self, p: u32) -> Result<PartitionData, GraphError> {
        let v_start = self.boundaries[p as usize];
        let v_end = self.boundaries[p as usize + 1];
        let ne = self.part_edges[p as usize] as usize;
        let n = (v_end - v_start) as usize;
        let mut data = PartitionData {
            id: p,
            v_start,
            v_end,
            offsets: vec![0u64; n + 1],
            edges: vec![0; ne],
            weights: self.weighted.then(|| vec![0.0; ne]),
            timestamps: self.temporal.then(|| vec![0; ne]),
        };
        let region = self.region(p)?;
        let plans = self.chunk_plans(p, &region)?;
        for plan in &plans {
            let ls = (plan.v_start - v_start) as usize;
            let le = (plan.v_end - v_start) as usize;
            let (e0, e1) = (plan.first_edge as usize, (plan.first_edge + plan.num_edges) as usize);
            decode_chunk(
                &region,
                plan,
                self.weighted,
                self.temporal,
                &mut data.offsets[ls..le],
                &mut data.edges[e0..e1],
                data.weights.as_mut().map(|w| &mut w[e0..e1]),
                data.timestamps.as_mut().map(|t| &mut t[e0..e1]),
            )?;
        }
        data.offsets[n] = self.part_edges[p as usize];
        Ok(data)
    }

    /// Decode the whole graph back into a RAM-resident [`Csr`] — the
    /// escape hatch for consumers that need full random access (alias
    /// table construction, the mutation overlay's base, tests).
    pub fn to_csr(&self) -> Result<Csr, GraphError> {
        let nv = self.num_vertices as usize;
        let ne = self.num_edges as usize;
        let mut offsets = vec![0u64; nv + 1];
        let mut edges = vec![0; ne];
        let mut weights = self.weighted.then(|| vec![0.0f32; ne]);
        let mut timestamps = self.temporal.then(|| vec![0u32; ne]);
        let mut edge_base = 0u64;
        for p in 0..self.num_partitions() {
            let data = self.decode_partition(p)?;
            let (vs, n) = (data.v_start as usize, data.num_vertices() as usize);
            for li in 0..n {
                offsets[vs + li] = edge_base + data.offsets[li];
            }
            let (e0, e1) = (edge_base as usize, edge_base as usize + data.edges.len());
            edges[e0..e1].copy_from_slice(&data.edges);
            if let (Some(dst), Some(src)) = (weights.as_mut(), data.weights.as_ref()) {
                dst[e0..e1].copy_from_slice(src);
            }
            if let (Some(dst), Some(src)) = (timestamps.as_mut(), data.timestamps.as_ref()) {
                dst[e0..e1].copy_from_slice(src);
            }
            edge_base += data.edges.len() as u64;
        }
        offsets[nv] = edge_base;
        Csr::with_timestamps(offsets, edges, weights, timestamps)
    }
}

impl std::fmt::Debug for OocGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OocGraph")
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.num_edges)
            .field("num_partitions", &self.num_partitions())
            .field("file_bytes", &self.file_bytes())
            .field("backing", &self.backing_name())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// GraphStore
// ---------------------------------------------------------------------------

/// Where a graph's adjacency lives: the substrate abstraction threaded
/// through [`PartitionedGraph`], the mutation overlay, and the engine.
///
/// `Ram` is the original fully-resident CSR; `OutOfCore` keeps only the
/// partition table resident and decodes partitions on demand. Walk results
/// are bit-identical between the two (the differential battery pins this):
/// the substrate changes *where bytes come from*, never *which bytes*.
#[derive(Clone)]
pub enum GraphStore {
    /// Fully RAM-resident CSR.
    Ram(Arc<Csr>),
    /// Compressed on-disk CSR, decoded per partition on demand.
    OutOfCore(Arc<OocGraph>),
}

impl GraphStore {
    pub fn num_vertices(&self) -> u64 {
        match self {
            GraphStore::Ram(g) => g.num_vertices(),
            GraphStore::OutOfCore(g) => g.num_vertices(),
        }
    }

    pub fn num_edges(&self) -> u64 {
        match self {
            GraphStore::Ram(g) => g.num_edges(),
            GraphStore::OutOfCore(g) => g.num_edges(),
        }
    }

    pub fn is_weighted(&self) -> bool {
        match self {
            GraphStore::Ram(g) => g.is_weighted(),
            GraphStore::OutOfCore(g) => g.is_weighted(),
        }
    }

    pub fn is_temporal(&self) -> bool {
        match self {
            GraphStore::Ram(g) => g.is_temporal(),
            GraphStore::OutOfCore(g) => g.is_temporal(),
        }
    }

    /// The RAM CSR, if this store is RAM-resident.
    pub fn ram(&self) -> Option<&Arc<Csr>> {
        match self {
            GraphStore::Ram(g) => Some(g),
            GraphStore::OutOfCore(_) => None,
        }
    }

    /// The out-of-core handle, if this store is disk-backed.
    pub fn ooc(&self) -> Option<&Arc<OocGraph>> {
        match self {
            GraphStore::Ram(_) => None,
            GraphStore::OutOfCore(g) => Some(g),
        }
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphStore::Ram(g) => write!(f, "GraphStore::Ram({} vertices)", g.num_vertices()),
            GraphStore::OutOfCore(g) => {
                write!(f, "GraphStore::OutOfCore({} vertices)", g.num_vertices())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, with_random_timestamps, with_random_weights, RmatParams};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lt_oocore_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    fn powerlaw(scale: u32, edge_factor: u32, seed: u64) -> Csr {
        rmat(RmatParams {
            scale,
            edge_factor,
            seed,
            ..RmatParams::default()
        })
        .csr
    }

    fn assert_partitions_match(pg: &PartitionedGraph, ooc: &OocGraph) {
        assert_eq!(ooc.num_partitions(), pg.num_partitions());
        assert_eq!(ooc.boundaries(), pg.boundaries());
        for p in 0..pg.num_partitions() {
            let want = pg.extract(p);
            let got = ooc.decode_partition(p).expect("decodes");
            assert_eq!(got.offsets, want.offsets, "partition {p} offsets");
            assert_eq!(got.edges, want.edges, "partition {p} edges");
            assert_eq!(got.weights, want.weights, "partition {p} weights");
            assert_eq!(got.timestamps, want.timestamps, "partition {p} timestamps");
            assert_eq!(ooc.partition_bytes(p), want.bytes());
            assert_eq!(ooc.partition_edges(p), want.edges.len() as u64);
        }
    }

    #[test]
    fn roundtrip_plain_weighted_temporal() {
        for (name, csr) in [
            ("plain", powerlaw(10, 8, 11)),
            ("weighted", with_random_weights(&powerlaw(10, 8, 12), 5)),
            (
                "temporal",
                with_random_timestamps(&powerlaw(10, 8, 13), 6, 64),
            ),
        ] {
            let csr = Arc::new(csr);
            let pg = PartitionedGraph::build(csr.clone(), 16 << 10);
            let path = tmp(&format!("roundtrip_{name}"));
            write_oocore(&pg, &path).expect("writes");
            let ooc = OocGraph::open(&path).expect("opens");
            assert_eq!(ooc.num_vertices(), csr.num_vertices());
            assert_eq!(ooc.num_edges(), csr.num_edges());
            assert_eq!(ooc.is_weighted(), csr.is_weighted());
            assert_eq!(ooc.is_temporal(), csr.is_temporal());
            assert_eq!(ooc.uncompressed_bytes(), csr.csr_bytes());
            assert_partitions_match(&pg, &ooc);
            let back = ooc.to_csr().expect("full decode");
            assert_eq!(back.offsets(), csr.offsets());
            assert_eq!(back.edges(), csr.edges());
            assert_eq!(back.weights(), csr.weights());
            assert_eq!(back.timestamps(), csr.timestamps());
            std::fs::remove_file(&path).ok();
        }
    }

    /// Neighbor order determines sampling, so the codec must preserve
    /// arbitrary (unsorted) rows bit for bit — zigzag deltas, not gaps.
    #[test]
    fn unsorted_rows_roundtrip_exactly() {
        let offsets = vec![0u64, 3, 5, 8, 8, 10];
        let edges: Vec<VertexId> = vec![4, 0, 2, 3, 1, 0, 4, 2, 1, 1];
        let csr = Arc::new(Csr::new(offsets, edges, None).unwrap());
        let pg = PartitionedGraph::build(csr.clone(), 64);
        let path = tmp("unsorted");
        write_oocore(&pg, &path).unwrap();
        let ooc = OocGraph::open(&path).unwrap();
        assert_partitions_match(&pg, &ooc);
        let back = ooc.to_csr().unwrap();
        assert_eq!(back.edges(), csr.edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pread_backing_matches_mmap() {
        let csr = Arc::new(powerlaw(9, 8, 21));
        let pg = PartitionedGraph::build(csr.clone(), 8 << 10);
        let path = tmp("pread");
        write_oocore(&pg, &path).unwrap();
        let auto = OocGraph::open(&path).unwrap();
        let pread = OocGraph::open_with(&path, OocBacking::Pread).unwrap();
        assert_eq!(pread.backing_name(), "pread");
        for p in 0..pg.num_partitions() {
            let a = auto.decode_partition(p).unwrap();
            let b = pread.decode_partition(p).unwrap();
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.edges, b.edges);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Sorted power-law adjacency must compress well — the engine's whole
    /// premise. The CI bench gate enforces ≥ 2× on larger graphs; this is
    /// the in-tree canary.
    #[test]
    fn compression_ratio_exceeds_two_on_powerlaw() {
        let csr = Arc::new(powerlaw(12, 16, 3));
        let pg = PartitionedGraph::build(csr.clone(), 64 << 10);
        let path = tmp("ratio");
        let file_bytes = write_oocore(&pg, &path).unwrap();
        let ratio = csr.csr_bytes() as f64 / file_bytes as f64;
        assert!(
            ratio >= 2.0,
            "compression ratio {ratio:.2} below the 2x floor"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a graph at all").unwrap();
        assert!(OocGraph::open(&path).is_err());
        let csr = Arc::new(powerlaw(8, 8, 9));
        let pg = PartitionedGraph::build(csr, 8 << 10);
        write_oocore(&pg, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        assert!(OocGraph::open(&path).is_err(), "truncated file must fail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for x in [0i64, 1, -1, 127, -128, 300, -300, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
        let mut buf = Vec::new();
        for x in [0u64, 1, 127, 128, 16384, u64::MAX] {
            buf.clear();
            put_varint(x, &mut buf);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
        }
    }
}
