//! Range-based graph partitioning (§III-B, Figure 5).
//!
//! Vertices `0..|V|` are divided into disjoint intervals by greedily
//! expanding each interval until adding the next vertex would exceed the
//! byte budget (the graph-pool block size). Benefits the paper claims, all
//! preserved here: transmission of a partition is one contiguous copy, the
//! partition size approximately fits any budget, and the partition of a
//! vertex is found by binary search.

use crate::oocore::{GraphStore, OocGraph};
use crate::{Csr, VertexId, EDGE_ENTRY_BYTES, VERTEX_ENTRY_BYTES};
use std::sync::Arc;

/// Identifier of a graph partition (index into the partition table).
pub type PartitionId = u32;

/// A graph plus its range partition table.
///
/// ```
/// use std::sync::Arc;
/// use lt_graph::{PartitionedGraph, gen::{rmat, RmatParams}};
/// let g = Arc::new(rmat(RmatParams { scale: 10, edge_factor: 8, ..Default::default() }).csr);
/// let pg = PartitionedGraph::build(g.clone(), 8 << 10);
/// let v = 17;
/// let p = pg.partition_of(v);
/// assert!(pg.vertex_range(p).contains(&v));
/// assert!(pg.partition_bytes(p) <= 8 << 10);
/// ```
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    /// Where adjacency lives: RAM CSR or the out-of-core compressed file.
    store: GraphStore,
    /// `boundaries[p]..boundaries[p+1]` is partition `p`'s vertex interval.
    boundaries: Vec<VertexId>,
    /// CSR bytes of each partition (what an explicit copy transfers).
    bytes: Vec<u64>,
    /// The budget used to build the table.
    block_bytes: u64,
}

/// A materialized partition: the contiguous data an explicit copy moves
/// into the GPU graph pool. Offsets are rebased so the partition is
/// self-contained.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionData {
    /// Which partition this is.
    pub id: PartitionId,
    /// First vertex (inclusive).
    pub v_start: VertexId,
    /// Last vertex (exclusive).
    pub v_end: VertexId,
    /// Rebased offsets, length `v_end - v_start + 1`, `offsets[0] == 0`.
    pub offsets: Vec<u64>,
    /// Edge targets (global vertex ids).
    pub edges: Vec<VertexId>,
    /// Optional edge weights parallel to `edges`.
    pub weights: Option<Vec<f32>>,
    /// Optional edge timestamps parallel to `edges` (temporal graphs).
    pub timestamps: Option<Vec<u32>>,
}

impl PartitionedGraph {
    /// Partition `csr` into ranges of at most `block_bytes` CSR bytes.
    ///
    /// A vertex whose own adjacency list exceeds the budget gets a singleton
    /// partition that overflows it — the paper hits this with Yahoo's hub
    /// vertex and points to vertex splitting as future work; we surface such
    /// partitions via [`PartitionedGraph::oversized_partitions`].
    ///
    /// # Panics
    /// Panics if `block_bytes` is too small to hold even an empty partition
    /// header (16 bytes).
    pub fn build(csr: Arc<Csr>, block_bytes: u64) -> Self {
        assert!(
            block_bytes > 2 * VERTEX_ENTRY_BYTES,
            "block size {block_bytes} cannot hold a partition header"
        );
        let nv = csr.num_vertices() as usize;
        let mut boundaries = vec![0 as VertexId];
        let mut bytes = Vec::new();
        let mut cur_bytes = VERTEX_ENTRY_BYTES; // the leading offset entry
        let extra = Self::extra_edge_bytes(&csr);
        let mut cur_start = 0usize;
        for v in 0..nv {
            let deg = csr.degree(v as VertexId);
            let add = VERTEX_ENTRY_BYTES + deg * (EDGE_ENTRY_BYTES + extra);
            if cur_bytes + add > block_bytes && v > cur_start {
                boundaries.push(v as VertexId);
                bytes.push(cur_bytes);
                cur_bytes = VERTEX_ENTRY_BYTES;
                cur_start = v;
            }
            cur_bytes += add;
        }
        boundaries.push(nv as VertexId);
        bytes.push(cur_bytes);
        PartitionedGraph {
            store: GraphStore::Ram(csr),
            boundaries,
            bytes,
            block_bytes,
        }
    }

    /// Adopt an out-of-core compressed graph: the partition table
    /// (boundaries, per-partition bytes and budget) comes straight from the
    /// file header — no adjacency is read until [`PartitionedGraph::extract`]
    /// decodes a partition on demand.
    pub fn from_ooc(ooc: Arc<OocGraph>) -> Self {
        let boundaries = ooc.boundaries().to_vec();
        let bytes = (0..ooc.num_partitions())
            .map(|p| ooc.partition_bytes(p))
            .collect();
        let block_bytes = ooc.block_bytes();
        PartitionedGraph {
            store: GraphStore::OutOfCore(ooc),
            boundaries,
            bytes,
            block_bytes,
        }
    }

    /// Re-partition a (possibly mutated) graph under a **frozen** boundary
    /// table: the vertex intervals of an existing table are kept, only the
    /// per-partition byte sizes are recomputed from `csr`. This is how the
    /// evolving-graph layer swaps in a fresh CSR at an epoch barrier
    /// without perturbing the vertex→partition map that in-flight walkers
    /// and the device graph pool are keyed by (DESIGN.md §15).
    ///
    /// # Panics
    /// Panics if `boundaries` is not a valid cover of `csr`'s vertex range
    /// (`boundaries[0] == 0`, strictly increasing, last entry `== |V|`).
    pub fn with_boundaries(csr: Arc<Csr>, boundaries: Vec<VertexId>, block_bytes: u64) -> Self {
        assert!(
            boundaries.len() >= 2
                && boundaries[0] == 0
                && *boundaries.last().unwrap() as u64 == csr.num_vertices()
                && boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must cover 0..|V| in strictly increasing intervals"
        );
        let extra = Self::extra_edge_bytes(&csr);
        let bytes = boundaries
            .windows(2)
            .map(|w| {
                let row_edges = csr.offsets()[w[1] as usize] - csr.offsets()[w[0] as usize];
                (w[1] - w[0] + 1) as u64 * VERTEX_ENTRY_BYTES
                    + row_edges * (EDGE_ENTRY_BYTES + extra)
            })
            .collect();
        PartitionedGraph {
            store: GraphStore::Ram(csr),
            boundaries,
            bytes,
            block_bytes,
        }
    }

    /// Per-edge bytes beyond the target id: weights and timestamps.
    fn extra_edge_bytes(csr: &Csr) -> u64 {
        let mut b = 0;
        if csr.is_weighted() {
            b += 4;
        }
        if csr.is_temporal() {
            b += 4;
        }
        b
    }

    /// The interval boundary table (`boundaries[p]..boundaries[p+1]` is
    /// partition `p`). Used to rebuild the table with
    /// [`PartitionedGraph::with_boundaries`] after a mutation epoch.
    #[inline]
    pub fn boundaries(&self) -> &[VertexId] {
        &self.boundaries
    }

    /// The underlying RAM-resident graph.
    ///
    /// # Panics
    /// Panics for an out-of-core store — adjacency is not resident there.
    /// Substrate-generic callers use [`PartitionedGraph::store`],
    /// [`PartitionedGraph::num_vertices`] and
    /// [`PartitionedGraph::extract`] instead.
    #[inline]
    pub fn csr(&self) -> &Arc<Csr> {
        self.store
            .ram()
            .expect("csr(): graph store is out-of-core; adjacency is not RAM-resident")
    }

    /// The graph substrate.
    #[inline]
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// The RAM CSR, when the store is RAM-resident.
    #[inline]
    pub fn ram_csr(&self) -> Option<&Arc<Csr>> {
        self.store.ram()
    }

    /// `|V|` of the full graph (both substrates).
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.store.num_vertices()
    }

    /// Number of partitions `P`.
    #[inline]
    pub fn num_partitions(&self) -> u32 {
        (self.boundaries.len() - 1) as u32
    }

    /// The byte budget the table was built with.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Partition containing vertex `v`, by binary search over the interval
    /// boundaries (the paper's lookup method).
    ///
    /// # Panics
    /// Panics if `v >= |V|`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        assert!(
            (v as u64) < self.store.num_vertices(),
            "vertex {v} out of range"
        );
        // partition_point returns the count of boundaries <= v; boundaries[0]=0
        // so the result is >= 1.
        (self.boundaries.partition_point(|&b| b <= v) - 1) as PartitionId
    }

    /// Vertex interval of partition `p`.
    #[inline]
    pub fn vertex_range(&self, p: PartitionId) -> std::ops::Range<VertexId> {
        self.boundaries[p as usize]..self.boundaries[p as usize + 1]
    }

    /// Number of vertices in partition `p`.
    #[inline]
    pub fn num_vertices_in(&self, p: PartitionId) -> u64 {
        let r = self.vertex_range(p);
        (r.end - r.start) as u64
    }

    /// CSR bytes of partition `p` — the explicit-copy transfer size `S_p`.
    #[inline]
    pub fn partition_bytes(&self, p: PartitionId) -> u64 {
        self.bytes[p as usize]
    }

    /// Number of edges in partition `p`.
    pub fn num_edges_in(&self, p: PartitionId) -> u64 {
        match &self.store {
            GraphStore::Ram(csr) => {
                let r = self.vertex_range(p);
                csr.offsets()[r.end as usize] - csr.offsets()[r.start as usize]
            }
            GraphStore::OutOfCore(ooc) => ooc.partition_edges(p),
        }
    }

    /// Ids of partitions that exceed the block budget (singleton hub
    /// partitions, e.g. Yahoo's).
    pub fn oversized_partitions(&self) -> Vec<PartitionId> {
        self.bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > self.block_bytes)
            .map(|(p, _)| p as PartitionId)
            .collect()
    }

    /// Materialize partition `p` for transfer into a graph-pool block:
    /// contiguous slice copies for a RAM store, a full region decode for
    /// an out-of-core store (the engine's host decode cache wraps the
    /// latter with recycling and chunk-parallel decode).
    ///
    /// # Panics
    /// Panics if an out-of-core region fails to read or decode — an
    /// unreadable graph file is unrecoverable mid-run.
    pub fn extract(&self, p: PartitionId) -> PartitionData {
        match &self.store {
            GraphStore::Ram(csr) => {
                let r = self.vertex_range(p);
                let base = csr.offsets()[r.start as usize];
                let end = csr.offsets()[r.end as usize];
                let offsets: Vec<u64> = csr.offsets()[r.start as usize..=r.end as usize]
                    .iter()
                    .map(|&o| o - base)
                    .collect();
                let edges = csr.edges()[base as usize..end as usize].to_vec();
                let weights = csr.weights().map(|w| w[base as usize..end as usize].to_vec());
                let timestamps = csr
                    .timestamps()
                    .map(|t| t[base as usize..end as usize].to_vec());
                PartitionData {
                    id: p,
                    v_start: r.start,
                    v_end: r.end,
                    offsets,
                    edges,
                    weights,
                    timestamps,
                }
            }
            GraphStore::OutOfCore(ooc) => ooc
                .decode_partition(p)
                .unwrap_or_else(|e| panic!("out-of-core partition {p} unreadable: {e}")),
        }
    }
}

impl PartitionData {
    /// Whether global vertex `v` lives in this partition.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.v_start <= v && v < self.v_end
    }

    /// Degree of global vertex `v` (must be in this partition).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        debug_assert!(self.contains(v));
        let i = (v - self.v_start) as usize;
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Neighbors of global vertex `v` (must be in this partition).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        debug_assert!(self.contains(v));
        let i = (v - self.v_start) as usize;
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Weights parallel to [`PartitionData::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[f32]> {
        let w = self.weights.as_ref()?;
        let i = (v - self.v_start) as usize;
        Some(&w[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Timestamps parallel to [`PartitionData::neighbors`].
    #[inline]
    pub fn neighbor_timestamps(&self, v: VertexId) -> Option<&[u32]> {
        let t = self.timestamps.as_ref()?;
        let i = (v - self.v_start) as usize;
        Some(&t[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Prefetch the rebased offsets cache line of global vertex `v`.
    /// Ignores vertices outside the partition (the hinted walker may be
    /// about to leave), making the hint safe to issue unconditionally.
    #[inline]
    pub fn prefetch_offsets(&self, v: VertexId) {
        if self.contains(v) {
            crate::prefetch_read(&self.offsets[(v - self.v_start) as usize]);
        }
    }

    /// Prefetch the start of global vertex `v`'s edge row (and weight row
    /// when weighted). Reads the rebased offset, so issue it after
    /// [`PartitionData::prefetch_offsets`]. Ignores out-of-partition and
    /// zero-degree vertices.
    #[inline]
    pub fn prefetch_edges(&self, v: VertexId) {
        if !self.contains(v) {
            return;
        }
        let lo = self.offsets[(v - self.v_start) as usize] as usize;
        if lo < self.edges.len() {
            crate::prefetch_read(&self.edges[lo]);
            if let Some(w) = &self.weights {
                crate::prefetch_read(&w[lo]);
            }
        }
    }

    /// Transfer size of this partition in bytes.
    pub fn bytes(&self) -> u64 {
        self.offsets.len() as u64 * VERTEX_ENTRY_BYTES
            + self.edges.len() as u64 * EDGE_ENTRY_BYTES
            + self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4)
            + self.timestamps.as_ref().map_or(0, |t| t.len() as u64 * 4)
    }

    /// Number of vertices in the partition.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        (self.v_end - self.v_start) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatParams};

    fn graph() -> Arc<Csr> {
        Arc::new(
            rmat(RmatParams {
                scale: 11,
                edge_factor: 8,
                ..RmatParams::default()
            })
            .csr,
        )
    }

    #[test]
    fn partitions_cover_and_are_disjoint() {
        let g = graph();
        let pg = PartitionedGraph::build(g.clone(), 8 << 10);
        assert!(pg.num_partitions() > 1);
        let mut next = 0;
        for p in 0..pg.num_partitions() {
            let r = pg.vertex_range(p);
            assert_eq!(r.start, next, "gap or overlap at partition {p}");
            assert!(r.end > r.start, "empty partition {p}");
            next = r.end;
        }
        assert_eq!(next as u64, g.num_vertices());
    }

    #[test]
    fn partition_of_matches_ranges() {
        let g = graph();
        let pg = PartitionedGraph::build(g.clone(), 8 << 10);
        for v in 0..g.num_vertices() as u32 {
            let p = pg.partition_of(v);
            let r = pg.vertex_range(p);
            assert!(r.contains(&v));
        }
    }

    #[test]
    fn bytes_respect_budget() {
        let g = graph();
        let budget = 8 << 10;
        let pg = PartitionedGraph::build(g.clone(), budget);
        for p in 0..pg.num_partitions() {
            let b = pg.partition_bytes(p);
            if pg.num_vertices_in(p) > 1 {
                assert!(b <= budget, "partition {p} = {b} bytes > {budget}");
            }
            // Materialized size agrees with the table.
            assert_eq!(pg.extract(p).bytes(), b);
        }
    }

    #[test]
    fn extract_preserves_neighbors() {
        let g = graph();
        let pg = PartitionedGraph::build(g.clone(), 8 << 10);
        for p in 0..pg.num_partitions().min(8) {
            let data = pg.extract(p);
            for v in data.v_start..data.v_end {
                assert_eq!(data.neighbors(v), g.neighbors(v));
                assert_eq!(data.degree(v), g.degree(v));
            }
        }
    }

    #[test]
    fn hub_vertex_gets_singleton_overflow_partition() {
        // One vertex with degree 1000, budget fits ~100 edges.
        let mut b = crate::GraphBuilder::new().drop_zero_degree(false);
        for v in 1..=1000u32 {
            b = b.add_edge(0, v);
        }
        let g = Arc::new(b.build().unwrap().csr);
        let pg = PartitionedGraph::build(g, 512);
        let over = pg.oversized_partitions();
        assert_eq!(over, vec![0]);
        assert_eq!(pg.num_vertices_in(0), 1);
        assert!(pg.partition_bytes(0) > 512);
    }

    #[test]
    fn whole_graph_in_one_partition_with_huge_budget() {
        let g = graph();
        let pg = PartitionedGraph::build(g.clone(), u64::MAX);
        assert_eq!(pg.num_partitions(), 1);
        assert_eq!(pg.partition_bytes(0), g.csr_bytes());
    }

    #[test]
    fn with_boundaries_preserves_table_and_recomputes_bytes() {
        let g = graph();
        let pg = PartitionedGraph::build(g.clone(), 8 << 10);
        let rebuilt =
            PartitionedGraph::with_boundaries(g.clone(), pg.boundaries().to_vec(), 8 << 10);
        assert_eq!(rebuilt.boundaries(), pg.boundaries());
        for p in 0..pg.num_partitions() {
            assert_eq!(rebuilt.partition_bytes(p), pg.partition_bytes(p));
            assert_eq!(rebuilt.extract(p), pg.extract(p));
        }
    }

    #[test]
    fn edge_counts_sum_to_total() {
        let g = graph();
        let pg = PartitionedGraph::build(g.clone(), 4 << 10);
        let total: u64 = (0..pg.num_partitions()).map(|p| pg.num_edges_in(p)).sum();
        assert_eq!(total, g.num_edges());
    }
}
