//! Locality-improving vertex reordering.
//!
//! Range-based partitioning (§III-B) performs best when neighbors have
//! nearby ids: a walk then stays inside its partition for many steps
//! before reshuffling. Real web graphs get this for free from URL-ordered
//! ids; social graphs and synthetic stand-ins do not. This module provides
//! the standard orderings systems apply offline:
//!
//! - [`bfs_order`]: breadth-first relabeling from a (high-degree) root —
//!   neighbors land close together; the classic bandwidth-reducing
//!   ordering.
//! - [`degree_order`]: hubs first — concentrates the hot vertices in the
//!   first partitions, which stay cached.
//! - [`apply_order`]: rebuild a [`Csr`] under any permutation.
//!
//! The `ablation_reorder` benchmark measures the effect on partition
//! self-loop rate (the fraction of edges staying inside their partition)
//! and on engine throughput.

use crate::{Csr, VertexId};
use std::collections::VecDeque;

/// A vertex permutation: `perm[old_id] = new_id`. Always a bijection on
/// `0..num_vertices`.
#[derive(Clone, Debug)]
pub struct Permutation {
    perm: Vec<VertexId>,
}

impl Permutation {
    /// Identity permutation of `n` vertices.
    pub fn identity(n: u64) -> Self {
        Permutation {
            perm: (0..n as VertexId).collect(),
        }
    }

    /// Build from a `new → old` visit order (each old id exactly once).
    pub fn from_visit_order(order: &[VertexId]) -> Self {
        let mut perm = vec![VertexId::MAX; order.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            debug_assert_eq!(perm[old_id as usize], VertexId::MAX, "duplicate id");
            perm[old_id as usize] = new_id as VertexId;
        }
        debug_assert!(perm.iter().all(|&x| x != VertexId::MAX), "not a bijection");
        Permutation { perm }
    }

    /// New id of `old`.
    #[inline]
    pub fn map(&self, old: VertexId) -> VertexId {
        self.perm[old as usize]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }
}

/// BFS relabeling: start at the highest-degree vertex, breadth-first
/// relabel; disconnected components follow in degree order.
pub fn bfs_order(g: &Csr) -> Permutation {
    let n = g.num_vertices() as usize;
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    // Seed queue: vertices by descending degree, so each component starts
    // at its hub.
    let mut seeds: Vec<VertexId> = (0..n as VertexId).collect();
    seeds.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut queue = VecDeque::new();
    for seed in seeds {
        if seen[seed as usize] {
            continue;
        }
        seen[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    Permutation::from_visit_order(&order)
}

/// Degree relabeling: descending degree, ties by old id.
pub fn degree_order(g: &Csr) -> Permutation {
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    Permutation::from_visit_order(&order)
}

/// Rebuild the graph with vertices relabeled by `perm`. Weights follow
/// their edges; neighbor lists come out sorted.
pub fn apply_order(g: &Csr, perm: &Permutation) -> Csr {
    assert_eq!(perm.len() as u64, g.num_vertices(), "permutation size");
    let n = g.num_vertices() as usize;
    // Degrees under the new labels.
    let mut offsets = vec![0u64; n + 1];
    for old in 0..n as VertexId {
        offsets[perm.map(old) as usize + 1] = g.degree(old);
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let ne = g.num_edges() as usize;
    let mut edges = vec![0 as VertexId; ne];
    let mut weights = g.weights().map(|_| vec![0.0f32; ne]);
    for old in 0..n as VertexId {
        let new = perm.map(old);
        let base = offsets[new as usize] as usize;
        // Collect remapped neighbors (+ weights), sort by new id.
        let nbrs = g.neighbors(old);
        let mut pairs: Vec<(VertexId, f32)> = match g.neighbor_weights(old) {
            Some(w) => nbrs
                .iter()
                .zip(w.iter())
                .map(|(&t, &x)| (perm.map(t), x))
                .collect(),
            None => nbrs.iter().map(|&t| (perm.map(t), 0.0)).collect(),
        };
        pairs.sort_unstable_by_key(|&(t, _)| t);
        for (k, (t, x)) in pairs.into_iter().enumerate() {
            edges[base + k] = t;
            if let Some(w) = weights.as_mut() {
                w[base + k] = x;
            }
        }
    }
    Csr::new(offsets, edges, weights).expect("permutation preserves validity")
}

/// Fraction of edges whose endpoints fall in the same range partition of
/// `partition_bytes` — the walk-locality indicator the reordering aims to
/// raise.
pub fn partition_selfloop_rate(g: &std::sync::Arc<Csr>, partition_bytes: u64) -> f64 {
    let pg = crate::PartitionedGraph::build(std::sync::Arc::clone(g), partition_bytes);
    if g.num_edges() == 0 {
        return 0.0;
    }
    let mut same = 0u64;
    for (s, d) in g.iter_edges() {
        if pg.partition_of(s) == pg.partition_of(d) {
            same += 1;
        }
    }
    same as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{erdos_renyi, rmat, with_random_weights, RmatParams};
    use std::collections::HashSet;

    fn graph() -> Csr {
        rmat(RmatParams {
            scale: 10,
            edge_factor: 8,
            seed: 3,
            ..RmatParams::default()
        })
        .csr
    }

    #[test]
    fn bfs_order_is_a_bijection() {
        let g = graph();
        let p = bfs_order(&g);
        let set: HashSet<VertexId> = (0..g.num_vertices() as u32).map(|v| p.map(v)).collect();
        assert_eq!(set.len() as u64, g.num_vertices());
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = graph();
        let p = degree_order(&g);
        let hub = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        assert_eq!(p.map(hub), 0);
    }

    #[test]
    fn apply_order_preserves_structure() {
        let g = graph();
        let p = bfs_order(&g);
        let h = apply_order(&g, &p);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for old in 0..g.num_vertices() as u32 {
            let new = p.map(old);
            assert_eq!(h.degree(new), g.degree(old));
            let mut expect: Vec<VertexId> = g.neighbors(old).iter().map(|&t| p.map(t)).collect();
            expect.sort_unstable();
            assert_eq!(h.neighbors(new), &expect[..]);
        }
    }

    #[test]
    fn apply_order_carries_weights() {
        let g = with_random_weights(&graph(), 5);
        let p = degree_order(&g);
        let h = apply_order(&g, &p);
        assert!(h.is_weighted());
        // Weight multiset per vertex is preserved.
        for old in 0..g.num_vertices() as u32 {
            let mut a: Vec<u32> = g
                .neighbor_weights(old)
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let mut b: Vec<u32> = h
                .neighbor_weights(p.map(old))
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bfs_improves_er_locality() {
        // Erdős–Rényi graphs have no id locality; BFS relabeling creates
        // some.
        let g = std::sync::Arc::new(erdos_renyi(2048, 8 * 2048, 7).csr);
        let budget = g.csr_bytes() / 16;
        let before = partition_selfloop_rate(&g, budget);
        let reordered = std::sync::Arc::new(apply_order(&g, &bfs_order(&g)));
        let after = partition_selfloop_rate(&reordered, budget);
        assert!(
            after > before,
            "bfs should improve locality: {before} -> {after}"
        );
    }

    #[test]
    fn identity_changes_nothing() {
        let g = graph();
        let h = apply_order(&g, &Permutation::identity(g.num_vertices()));
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.edges(), h.edges());
    }
}
