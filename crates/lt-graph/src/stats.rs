//! Graph statistics for the Table II harness and workload sizing.

use crate::Csr;
use serde::Serialize;

/// Summary statistics of a graph, mirroring the columns of Table II.
#[derive(Clone, Debug, Serialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of directed edges stored (undirected edges count twice).
    pub num_edges: u64,
    /// CSR size in bytes (`(|V|+1)*8 + |E|*4`).
    pub csr_bytes: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Average degree.
    pub avg_degree: f64,
    /// Degree distribution skew: fraction of edges owned by the top 1% of
    /// vertices by degree. ~0.01–0.05 for uniform graphs, ≫0.1 for power law.
    pub top1pct_edge_share: f64,
}

/// Compute [`GraphStats`] for a graph.
pub fn stats(csr: &Csr) -> GraphStats {
    let nv = csr.num_vertices();
    let ne = csr.num_edges();
    let mut degrees: Vec<u64> = (0..nv as u32).map(|v| csr.degree(v)).collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let top = (nv as usize / 100).max(1);
    let top_edges: u64 = degrees.iter().take(top).sum();
    GraphStats {
        num_vertices: nv,
        num_edges: ne,
        csr_bytes: csr.csr_bytes(),
        max_degree: degrees.first().copied().unwrap_or(0),
        avg_degree: if nv == 0 { 0.0 } else { ne as f64 / nv as f64 },
        top1pct_edge_share: if ne == 0 {
            0.0
        } else {
            top_edges as f64 / ne as f64
        },
    }
}

/// Human-readable byte size (e.g. `"364 MB"`), matching Table II style.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut x = b as f64;
    let mut u = 0;
    while x >= 1024.0 && u < UNITS.len() - 1 {
        x /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{x:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{erdos_renyi, rmat, RmatParams};

    #[test]
    fn stats_basic() {
        let g = erdos_renyi(1024, 8192, 3).csr;
        let s = stats(&g);
        assert_eq!(s.num_vertices, g.num_vertices());
        assert_eq!(s.num_edges, g.num_edges());
        assert!(s.avg_degree > 1.0);
        assert!(s.max_degree >= s.avg_degree as u64);
    }

    #[test]
    fn skew_separates_rmat_from_er() {
        let er = stats(&erdos_renyi(4096, 32768, 3).csr);
        let rm = stats(
            &rmat(RmatParams {
                scale: 12,
                edge_factor: 8,
                ..RmatParams::default()
            })
            .csr,
        );
        assert!(
            rm.top1pct_edge_share > 2.0 * er.top1pct_edge_share,
            "rmat {} vs er {}",
            rm.top1pct_edge_share,
            er.top1pct_edge_share
        );
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.50 KB");
        assert_eq!(human_bytes(364 << 20), "364.00 MB");
    }
}

/// Log₂-bucketed degree histogram: `buckets[i]` counts vertices with
/// degree in `[2^i, 2^(i+1))` (bucket 0 holds degree-1 vertices; degree-0
/// vertices are counted separately since preprocessing normally removes
/// them).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DegreeHistogram {
    /// Vertices with degree zero.
    pub zero: u64,
    /// Log₂ buckets.
    pub buckets: Vec<u64>,
}

/// Compute the degree histogram of a graph.
pub fn degree_histogram(csr: &Csr) -> DegreeHistogram {
    let mut zero = 0u64;
    let mut buckets: Vec<u64> = Vec::new();
    for v in 0..csr.num_vertices() as u32 {
        let d = csr.degree(v);
        if d == 0 {
            zero += 1;
            continue;
        }
        let b = 63 - d.leading_zeros() as usize;
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    DegreeHistogram { zero, buckets }
}

impl DegreeHistogram {
    /// Render as `deg 2^i: count` lines for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.zero > 0 {
            out.push_str(&format!("  deg 0        : {}\n", self.zero));
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push_str(&format!(
                    "  deg [{}, {}) : {}\n",
                    1u64 << i,
                    1u64 << (i + 1),
                    c
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use crate::gen::{rmat, RmatParams};
    use crate::GraphBuilder;

    #[test]
    fn histogram_buckets_are_correct() {
        // Star: center degree 5, leaves degree 1.
        let mut b = GraphBuilder::new();
        for v in 1..=5u32 {
            b = b.add_edge(0, v);
        }
        let g = b.build().unwrap().csr;
        let h = degree_histogram(&g);
        assert_eq!(h.zero, 0);
        assert_eq!(h.buckets[0], 5); // five degree-1 leaves
        assert_eq!(h.buckets[2], 1); // center: degree 5 in [4, 8)
        assert_eq!(h.buckets.iter().sum::<u64>(), 6);
        assert!(h.render().contains("deg [4, 8) : 1"));
    }

    #[test]
    fn histogram_total_matches_vertices() {
        let g = rmat(RmatParams {
            scale: 11,
            edge_factor: 8,
            seed: 2,
            ..RmatParams::default()
        })
        .csr;
        let h = degree_histogram(&g);
        assert_eq!(h.zero + h.buckets.iter().sum::<u64>(), g.num_vertices());
        // Power law: low buckets dominate high buckets.
        assert!(h.buckets[0] + h.buckets[1] > *h.buckets.last().unwrap());
    }
}
