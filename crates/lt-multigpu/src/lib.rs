//! Multi-GPU scale-out for massive random walks (extension).
//!
//! The paper runs on one GPU and notes that sampled paths ship to *other*
//! GPUs (§IV-A, citing GNNLab/FlashMob-style pipelines), and closes by
//! pointing at faster interconnects. This crate explores the natural next
//! step: when one device's memory is the wall, shard the graph across `k`
//! simulated GPUs and run KnightKing-style bulk-synchronous supersteps:
//!
//! 1. each GPU holds one contiguous vertex-range shard resident;
//! 2. in a superstep, every GPU advances its resident walks until they
//!    terminate or leave its shard (multi-step, exactly like LightTraffic
//!    walks a partition);
//! 3. leavers are exchanged all-to-all — sender's D2H link and receiver's
//!    H2D link are both charged, plus a per-superstep barrier that waits
//!    for the slowest device;
//! 4. repeat until no walks remain.
//!
//! Like every engine in the workspace, walkers use the counter-based RNG,
//! so trajectories are bit-identical to the single-GPU LightTraffic engine
//! and the CPU references — asserted in tests.

use lt_engine::algorithm::{StepContext, StepDecision, WalkAlgorithm};
use lt_engine::walker::Walker;
use lt_gpusim::trace::{to_chrome_trace_devices, DeviceTrace};
use lt_gpusim::{Category, CostModel, Direction, Gpu, GpuConfig, KernelCost};
use lt_graph::{Csr, VertexId};
use serde::Serialize;
use std::sync::Arc;

/// Configuration of the simulated multi-GPU cluster.
#[derive(Clone, Debug)]
pub struct MultiGpuConfig {
    /// Number of devices.
    pub num_gpus: usize,
    /// Per-device memory capacity (each shard + walk storage must fit).
    pub gpu_memory_bytes: u64,
    /// Interconnect model, shared by all devices (host↔device and
    /// peer-to-peer exchange both ride it).
    pub cost: CostModel,
    /// Walk RNG seed.
    pub seed: u64,
    /// Safety cap on supersteps.
    pub max_supersteps: u64,
    /// Record every device's op log and return per-device traces on the
    /// result (one Chrome-trace process per GPU).
    pub record_ops: bool,
}

impl Default for MultiGpuConfig {
    fn default() -> Self {
        MultiGpuConfig {
            num_gpus: 4,
            gpu_memory_bytes: 24 << 30,
            cost: CostModel::pcie3(),
            seed: 42,
            max_supersteps: 1_000_000,
            record_ops: false,
        }
    }
}

/// Errors from the multi-GPU engine.
#[derive(Debug)]
pub enum MultiGpuError {
    /// A shard (or its walk storage) exceeds a device's memory.
    ShardTooLarge {
        /// The device whose shard does not fit.
        gpu: usize,
        /// Shard bytes required.
        bytes: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// The run passed the superstep cap.
    SuperstepLimit(u64),
}

impl std::fmt::Display for MultiGpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiGpuError::ShardTooLarge {
                gpu,
                bytes,
                capacity,
            } => write!(
                f,
                "shard for gpu {gpu} needs {bytes} bytes but the device holds {capacity}"
            ),
            MultiGpuError::SuperstepLimit(n) => write!(f, "exceeded {n} supersteps"),
        }
    }
}

impl std::error::Error for MultiGpuError {}

/// Result of a multi-GPU run.
#[derive(Clone, Debug, Serialize)]
pub struct MultiGpuResult {
    /// Total walk steps executed.
    pub total_steps: u64,
    /// Walks finished.
    pub finished_walks: u64,
    /// Simulated wall time: the barrier-synchronized makespan.
    pub makespan_ns: u64,
    /// Bulk-synchronous supersteps executed.
    pub supersteps: u64,
    /// Walker hops shipped between devices.
    pub exchanged_walks: u64,
    /// Per-device compute busy time (ns) — the load-balance picture.
    pub per_gpu_compute_ns: Vec<u64>,
    /// Visit counts when the algorithm tracks them.
    pub visit_counts: Option<Vec<u64>>,
    /// Per-device timelines when [`MultiGpuConfig::record_ops`] was set.
    pub device_traces: Option<Vec<DeviceTrace>>,
}

impl MultiGpuResult {
    /// Steps per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.total_steps as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Max/mean compute imbalance across devices (1.0 = perfectly even).
    pub fn compute_imbalance(&self) -> f64 {
        let max = *self.per_gpu_compute_ns.iter().max().unwrap_or(&0) as f64;
        let mean = self.per_gpu_compute_ns.iter().sum::<u64>() as f64
            / self.per_gpu_compute_ns.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Chrome-trace JSON with one process per device; `None` unless the
    /// run recorded ops.
    pub fn chrome_trace(&self) -> Option<String> {
        self.device_traces
            .as_ref()
            .map(|d| to_chrome_trace_devices(d))
    }
}

/// Contiguous vertex-range shards with roughly equal CSR bytes.
fn shard_boundaries(graph: &Csr, k: usize) -> Vec<VertexId> {
    let total = graph.csr_bytes();
    let per_shard = total.div_ceil(k as u64).max(1);
    let mut bounds = vec![0 as VertexId];
    let mut acc = 0u64;
    for v in 0..graph.num_vertices() as VertexId {
        acc += 8 + graph.degree(v) * 4;
        if acc >= per_shard && (bounds.len() as u64) < k as u64 {
            bounds.push(v + 1);
            acc = 0;
        }
    }
    while bounds.len() < k + 1 {
        bounds.push(graph.num_vertices() as VertexId);
    }
    bounds
}

#[inline]
fn shard_of(bounds: &[VertexId], v: VertexId) -> usize {
    bounds.partition_point(|&b| b <= v) - 1
}

/// Run `num_walks` walks of `alg` over `cfg.num_gpus` simulated devices.
pub fn run_multi_gpu(
    graph: &Arc<Csr>,
    alg: &Arc<dyn WalkAlgorithm>,
    num_walks: u64,
    cfg: &MultiGpuConfig,
) -> Result<MultiGpuResult, MultiGpuError> {
    let k = cfg.num_gpus.max(1);
    let bounds = shard_boundaries(graph, k);
    let s_w = alg.walker_state_bytes();
    let gpus: Vec<Gpu> = (0..k)
        .map(|_| {
            Gpu::new(GpuConfig {
                memory_bytes: cfg.gpu_memory_bytes,
                cost: cfg.cost.clone(),
                record_ops: cfg.record_ops,
                ..Default::default()
            })
        })
        .collect();
    let streams: Vec<_> = gpus
        .iter()
        .enumerate()
        .map(|(i, g)| g.create_stream(&format!("gpu{i}")))
        .collect();

    // Load each shard once; charge the device's memory and H2D link.
    let mut shard_bytes = Vec::with_capacity(k);
    for (i, g) in gpus.iter().enumerate() {
        let lo = bounds[i] as usize;
        let hi = bounds[i + 1] as usize;
        let nv = (hi - lo) as u64;
        let ne = graph.offsets()[hi] - graph.offsets()[lo];
        let bytes = (nv + 1) * 8 + ne * 4;
        shard_bytes.push(bytes);
        // Shard + a generous walk buffer must fit the device.
        let walk_buf = num_walks * s_w;
        if g.malloc(bytes).is_err() || g.malloc(walk_buf).is_err() {
            return Err(MultiGpuError::ShardTooLarge {
                gpu: i,
                bytes: bytes + walk_buf,
                capacity: cfg.gpu_memory_bytes,
            });
        }
        g.copy_async(
            Direction::HostToDevice,
            bytes.max(1),
            Category::GraphLoad,
            streams[i],
        )
        .expect("no fault plan on multi-GPU devices");
    }

    // Distribute the initial walkers.
    let nv = graph.num_vertices();
    let mut resident: Vec<Vec<Walker>> = vec![Vec::new(); k];
    for w in alg.initial_walkers(graph, num_walks) {
        resident[shard_of(&bounds, w.vertex)].push(w);
    }
    let mut visit_counts = alg.tracks_visits().then(|| vec![0u64; nv as usize]);

    let mut total_steps = 0u64;
    let mut finished = 0u64;
    let mut exchanged = 0u64;
    let mut supersteps = 0u64;

    while resident.iter().any(|r| !r.is_empty()) {
        supersteps += 1;
        if supersteps > cfg.max_supersteps {
            return Err(MultiGpuError::SuperstepLimit(cfg.max_supersteps));
        }
        // Phase 1: each device walks its residents to shard exit.
        let mut outgoing: Vec<Vec<Walker>> = vec![Vec::new(); k];
        let mut sent_walks: Vec<u64> = vec![0; k];
        for (i, g) in gpus.iter().enumerate() {
            if resident[i].is_empty() {
                continue;
            }
            let lo = bounds[i];
            let hi = bounds[i + 1];
            let mut steps = 0u64;
            let mut leavers = 0u64;
            for mut w in resident[i].drain(..) {
                loop {
                    let ctx = StepContext {
                        neighbors: graph.neighbors(w.vertex),
                        weights: graph.neighbor_weights(w.vertex),
                        prev_neighbors: (w.aux != u32::MAX && (w.aux as u64) < nv)
                            .then(|| graph.neighbors(w.aux)),
                        timestamps: graph.neighbor_timestamps(w.vertex),
                        num_vertices: nv,
                    };
                    let d = alg.step(&w, ctx, cfg.seed);
                    match d {
                        StepDecision::Terminate => {
                            finished += 1;
                            break;
                        }
                        StepDecision::Move(v) | StepDecision::MoveAt(v, _) => {
                            steps += 1;
                            d.advance(&mut w);
                            if let Some(c) = visit_counts.as_mut() {
                                c[v as usize] += 1;
                            }
                            if !(lo..hi).contains(&v) {
                                leavers += 1;
                                outgoing[shard_of(&bounds, v)].push(w);
                                break;
                            }
                        }
                    }
                }
            }
            total_steps += steps;
            exchanged += leavers;
            sent_walks[i] = leavers;
            g.kernel_async(
                KernelCost {
                    update_ns: cfg.cost.step_time_in(steps, shard_bytes[i]),
                    reshuffle_ns: cfg.cost.reshuffle_time(leavers, k as u32, true),
                    other_ns: 0,
                    zero_copy_bytes: 0,
                },
                Category::Compute,
                streams[i],
            );
        }
        // Phase 2: exchange. Sender ships its leavers (D2H), receiver
        // ingests them (H2D). Using per-destination batched messages.
        for (dest, walkers) in outgoing.iter().enumerate() {
            if walkers.is_empty() {
                continue;
            }
            let bytes = walkers.len() as u64 * s_w;
            // All senders' traffic is aggregated on the receiving link;
            // each sender also pays its outbound link. With one message
            // per (sender, dest) pair folded together this is the
            // receiving-side bottleneck, which dominates all-to-all.
            gpus[dest]
                .copy_async(
                    Direction::HostToDevice,
                    bytes,
                    Category::WalkLoad,
                    streams[dest],
                )
                .expect("no fault plan on multi-GPU devices");
        }
        for (src, g) in gpus.iter().enumerate() {
            // Each sender pays its own outbound volume exactly.
            let out_bytes = sent_walks[src] * s_w;
            if out_bytes > 0 {
                g.copy_async(
                    Direction::DeviceToHost,
                    out_bytes,
                    Category::WalkEvict,
                    streams[src],
                )
                .expect("no fault plan on multi-GPU devices");
            }
        }
        // Phase 3: barrier — every device waits for the slowest.
        for (g, &s) in gpus.iter().zip(streams.iter()) {
            g.synchronize(s);
        }
        let global = gpus.iter().map(|g| g.now()).max().unwrap_or(0);
        for g in &gpus {
            g.advance_to(global);
        }
        // Deliver.
        for (dest, walkers) in outgoing.into_iter().enumerate() {
            resident[dest].extend(walkers);
        }
    }

    let makespan = gpus
        .iter()
        .map(|g| g.stats().makespan_ns)
        .max()
        .unwrap_or(0);
    Ok(MultiGpuResult {
        total_steps,
        finished_walks: finished,
        makespan_ns: makespan,
        supersteps,
        exchanged_walks: exchanged,
        per_gpu_compute_ns: gpus.iter().map(|g| g.stats().computing_ns()).collect(),
        visit_counts,
        device_traces: cfg.record_ops.then(|| {
            gpus.iter()
                .enumerate()
                .map(|(i, g)| DeviceTrace {
                    name: format!("gpu {i}"),
                    ops: g.op_log(),
                    faults: g.fault_log(),
                })
                .collect()
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_engine::algorithm::{PageRank, UniformSampling};
    use lt_graph::gen::{rmat, RmatParams};

    fn graph() -> Arc<Csr> {
        Arc::new(
            rmat(RmatParams {
                scale: 11,
                edge_factor: 8,
                seed: 13,
                ..RmatParams::default()
            })
            .csr,
        )
    }

    #[test]
    fn shards_cover_and_are_contiguous() {
        let g = graph();
        for k in [1usize, 2, 4, 7] {
            let b = shard_boundaries(&g, k);
            assert_eq!(b.len(), k + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[k] as u64, g.num_vertices());
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
            for v in 0..g.num_vertices() as u32 {
                let s = shard_of(&b, v);
                assert!((b[s]..b[s + 1]).contains(&v));
            }
        }
    }

    #[test]
    fn all_walks_finish_and_steps_are_exact() {
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(12));
        let r = run_multi_gpu(&g, &alg, 2_000, &MultiGpuConfig::default()).unwrap();
        assert_eq!(r.finished_walks, 2_000);
        assert_eq!(r.total_steps, 2_000 * 12);
        assert!(r.exchanged_walks > 0, "walks must cross shards");
        assert!(r.supersteps > 1);
    }

    #[test]
    fn trajectories_match_single_gpu_lighttraffic() {
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(10, 0.15));
        let multi = run_multi_gpu(&g, &alg, 1_500, &MultiGpuConfig::default()).unwrap();
        let mut lt = lt_engine::LightTraffic::new(
            g.clone(),
            alg,
            lt_engine::EngineConfig {
                batch_capacity: 128,
                seed: 42,
                ..lt_engine::EngineConfig::light_traffic(16 << 10, 4)
            },
        )
        .unwrap();
        let single = lt.run(1_500).unwrap();
        assert_eq!(multi.visit_counts.unwrap(), single.visit_counts.unwrap());
        assert_eq!(multi.total_steps, single.metrics.total_steps);
    }

    #[test]
    fn adding_devices_scales_the_bsp_execution() {
        // k = 1 skips the BSP machinery entirely (one shard, one
        // superstep), so the scaling claim is about k ≥ 2: every added
        // device brings its own compute *and* its own exchange links, so
        // the barrier-synchronized time drops.
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(40));
        let run = |k: usize| {
            run_multi_gpu(
                &g,
                &alg,
                50_000,
                &MultiGpuConfig {
                    num_gpus: k,
                    ..Default::default()
                },
            )
            .unwrap()
            .makespan_ns
        };
        let t2 = run(2);
        let t4 = run(4);
        let t8 = run(8);
        assert!(t4 < t2, "4 GPUs {t4} !< 2 GPUs {t2}");
        assert!(t8 < t4, "8 GPUs {t8} !< 4 GPUs {t4}");
    }

    #[test]
    fn bsp_pays_an_exchange_tax_vs_one_big_device() {
        // The flip side (and the reason the paper prefers out-of-memory on
        // ONE device when the graph fits host memory): if a single device
        // could hold everything, sharding only adds cross-shard traffic.
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(40));
        let run = |k: usize| {
            run_multi_gpu(
                &g,
                &alg,
                20_000,
                &MultiGpuConfig {
                    num_gpus: k,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert!(four.makespan_ns > one.makespan_ns);
        assert!(four.exchanged_walks > 0 && one.exchanged_walks == 0);
    }

    #[test]
    fn shard_too_large_is_reported() {
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(4));
        let r = run_multi_gpu(
            &g,
            &alg,
            100,
            &MultiGpuConfig {
                num_gpus: 2,
                gpu_memory_bytes: 1 << 10,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(MultiGpuError::ShardTooLarge { .. })));
    }

    #[test]
    fn recorded_runs_yield_one_trace_process_per_device() {
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(8));
        let r = run_multi_gpu(
            &g,
            &alg,
            2_000,
            &MultiGpuConfig {
                num_gpus: 3,
                record_ops: true,
                ..Default::default()
            },
        )
        .unwrap();
        let traces = r.device_traces.as_ref().unwrap();
        assert_eq!(traces.len(), 3);
        assert!(traces.iter().all(|t| !t.ops.is_empty()));
        let trace: serde_json::Value = serde_json::from_str(&r.chrome_trace().unwrap()).unwrap();
        let arr = trace.as_array().unwrap();
        let mut proc_pids: Vec<u64> = arr
            .iter()
            .filter(|e| e["name"] == "process_name")
            .map(|e| e["pid"].as_u64().unwrap())
            .collect();
        proc_pids.sort_unstable();
        assert_eq!(proc_pids, vec![0, 1, 2], "one trace process per device");
        // Op spans must not all collapse onto pid 0.
        assert!(arr
            .iter()
            .any(|e| e["ph"] == "X" && e["pid"].as_u64() == Some(2)));
        // A default run records nothing and stays trace-free.
        let plain = run_multi_gpu(&g, &alg, 100, &MultiGpuConfig::default()).unwrap();
        assert!(plain.device_traces.is_none());
        assert!(plain.chrome_trace().is_none());
    }

    #[test]
    fn single_gpu_has_no_exchange() {
        let g = graph();
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(8));
        let r = run_multi_gpu(
            &g,
            &alg,
            1_000,
            &MultiGpuConfig {
                num_gpus: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.exchanged_walks, 0);
        assert_eq!(r.supersteps, 1);
        assert_eq!(r.compute_imbalance(), 1.0);
    }
}
