//! Walk-as-a-service: a multi-tenant serving layer over one LightTraffic
//! engine.
//!
//! Many tenants submit *jobs* — walk workloads ([`lt_engine::JobSpec`]):
//! algorithm, seed vertices or a walk count, RNG seed — against one
//! shared immutable graph. A deterministic [`Scheduler`] interleaves all
//! jobs' walkers through a single engine pipeline (walkers carry their
//! job's tag, kernel merges attribute results per tag), enforces
//! per-tenant token budgets (admission + steps; exhaustion parks jobs,
//! never errors), streams incremental results over bounded channels, and
//! suspends/resumes individual jobs on the engine's checkpoint
//! machinery.
//!
//! The front end is [`Server`] (scheduler on its own thread, cloneable
//! in-process [`ServerHandle`]) plus the optional [`TcpFrontend`]
//! speaking line-delimited JSON — no async runtime anywhere.
//!
//! Determinism: scheduling decisions are pure functions of submission
//! order and budget state, and each job's result is bit-identical to the
//! same spec run alone — at any [`lt_engine::EngineConfig::kernel_threads`]
//! or [`lt_engine::HostExec`] setting, with or without fault injection
//! (DESIGN.md §13).
//!
//! ```
//! use lt_engine::{EngineConfig, JobSpec};
//! use lt_graph::gen::{rmat, RmatParams};
//! use lt_server::{Scheduler, ServerConfig};
//! use std::sync::Arc;
//!
//! let g = Arc::new(rmat(RmatParams { scale: 10, edge_factor: 8, ..Default::default() }).csr);
//! let mut sched = Scheduler::new(g, ServerConfig::new(EngineConfig::light_traffic(16 << 10, 4)))
//!     .unwrap();
//! let (alice, _events) = sched.submit("alice", JobSpec::deepwalk(500, 8, 1)).unwrap();
//! let (bob, _events) = sched.submit("bob", JobSpec::node2vec(300, 6, 0.5, 2.0, 2)).unwrap();
//! sched.run_until_idle().unwrap();
//! assert_eq!(sched.result(alice).unwrap().finished, 500);
//! assert_eq!(sched.result(bob).unwrap().finished, 300);
//! ```

pub mod scheduler;
pub mod server;

pub use scheduler::{JobEvent, JobInfo, JobResult, Scheduler, ServerConfig};
pub use server::{Server, ServerHandle, TcpFrontend};
