//! The deterministic multi-tenant job scheduler.
//!
//! One [`Scheduler`] owns one engine ([`lt_engine::Session`]) over one
//! shared immutable graph and multiplexes any number of tenant-submitted
//! jobs through it. All scheduling decisions — admission order, tranche
//! sizes, parking — are pure functions of submission order, pump count,
//! and budget state: no wall clock, no OS scheduling, no randomness. Two
//! schedulers fed the same jobs in the same order produce bit-identical
//! per-job results at any [`lt_engine::EngineConfig::kernel_threads`] or
//! [`lt_engine::HostExec`] setting, and each job's result is
//! bit-identical to the same spec run alone (see DESIGN.md §13).
//!
//! # Budgets (QRES-style admission control)
//!
//! Every tenant holds a token budget: admitting a fresh walker costs one
//! token, executing a step costs one token (debited post-hoc from the
//! kernel's per-tag deltas). A tenant at zero is *parked*, never errored:
//! its running jobs are extracted from the engine into checkpoints
//! ([`JobStatus::Blocked`]) and a [`Scheduler::top_up`] resumes them
//! where they left off. Re-injecting parked walkers is free — the tokens
//! were spent at first admission.

use lt_engine::{
    Checkpoint, EdgeUpdate, EngineConfig, EngineError, JobId, JobSpec, JobStatus, JobTable,
    Session, Walker,
};
use lt_graph::{Csr, VertexId};
use lt_telemetry::chrome::ChromeTraceBuilder;
use lt_telemetry::{
    derive_trace_id, log2_histogram_percentile, EventBus, FieldValue, JobPhase, JobTrace,
    LengthPercentiles, Level, MetricRegistry, TrafficReport, SHARED_TAG,
};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// Chrome-trace pid base for per-job tracks: devices occupy pids
/// `0..device_count`, jobs sit far above so the two namespaces never
/// collide (the trace builder dedupes metadata by pid regardless).
const JOB_TRACK_PID_BASE: u64 = 1000;

/// Serving-layer configuration over the engine's.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Engine configuration. `track_tags` is forced on and
    /// `record_paths` forced off (the path log indexes by walker id,
    /// which collides across jobs).
    pub engine: EngineConfig,
    /// Job slots over the scheduler's lifetime ([`JobTable`] capacity).
    pub max_jobs: usize,
    /// Tokens granted to a tenant on first contact.
    pub default_budget: u64,
    /// Walkers admitted per job per pump round (the fairness quantum).
    pub tranche_walkers: usize,
    /// Engine scheduler iterations per pump round.
    pub pump_iterations: u64,
    /// Bound of each job's streaming event channel; overflow falls back
    /// to an in-scheduler backlog, never blocks the pump.
    pub stream_capacity: usize,
    /// Recent phase spans retained per job (the flight-recorder ring;
    /// older spans drop but stay counted).
    pub span_capacity: usize,
    /// When set, flight records are dumped here as JSONL
    /// (`flight-job<id>-<reason>.jsonl`) whenever a job is evicted, parks
    /// on budget exhaustion, or the engine faults — readable with
    /// `lightwalk inspect`.
    pub flight_recorder_dir: Option<PathBuf>,
}

impl ServerConfig {
    /// A small-footprint default over the given engine config.
    ///
    /// Forces [`lt_engine::ZeroCopyPolicy::Never`]: second-order
    /// algorithms see the previous vertex's adjacency only when the
    /// kernel's graph view can serve it, and traffic-*adaptive* zero
    /// copy makes that view depend on what other tenants ran — which
    /// would break the "bit-identical to an isolated run" contract for
    /// node2vec-style jobs. A fixed policy (`Never` or `Always`) keeps
    /// views a pure function of the graph. Override
    /// `cfg.engine.zero_copy` after construction to trade that guarantee
    /// for adaptive traffic (safe when serving first-order algorithms
    /// only).
    pub fn new(mut engine: EngineConfig) -> Self {
        engine.zero_copy = lt_engine::ZeroCopyPolicy::Never;
        // Attribution on by default: a multi-tenant service without
        // per-tenant traffic accounting cannot answer its ops questions,
        // and the ledger stays off every deterministic path (DESIGN.md
        // §14). Clear `engine.attribution` after construction to opt out.
        engine.attribution = true;
        ServerConfig {
            engine,
            max_jobs: 64,
            default_budget: u64::MAX,
            tranche_walkers: 1 << 12,
            pump_iterations: 8,
            stream_capacity: 64,
            span_capacity: 64,
            flight_recorder_dir: None,
        }
    }
}

/// Incremental per-job delivery, streamed over a bounded channel as
/// batches retire.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// A pump round executed work for this job.
    Progress {
        /// Steps executed this round.
        steps: u64,
        /// Walks finished this round.
        finished: u64,
        /// Vertices visited this round (sorted; the multiset is
        /// schedule-invariant, the event order is not).
        visits: Vec<VertexId>,
        /// Lengths of the walks that finished this round.
        lengths: Vec<u32>,
    },
    /// The job was parked (budget exhaustion or explicit suspend).
    Blocked {
        /// Why.
        reason: String,
    },
    /// The job finished; the complete result follows.
    Done {
        /// Totals over the job's whole life.
        result: JobResult,
    },
    /// The job was cancelled; partial results remain readable via
    /// [`Scheduler::result`].
    Evicted,
}

/// Everything a finished (or cancelled) job produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobResult {
    /// Steps executed for this job.
    pub steps: u64,
    /// Walks that ran to termination.
    pub finished: u64,
    /// Every vertex visited, sorted ascending (canonical form — equal to
    /// the sorted visits of the same spec run in isolation).
    pub visits: Vec<VertexId>,
    /// Final length of every finished walk — retirement order while the
    /// job runs, sorted ascending (canonical) once it is done.
    pub lengths: Vec<u32>,
}

/// Public snapshot of one job's bookkeeping.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// The job's handle.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Total walks the spec will run.
    pub total_walks: u64,
    /// Walkers admitted into the engine so far.
    pub injected: u64,
    /// Walks finished so far.
    pub finished: u64,
    /// Steps executed so far.
    pub steps: u64,
}

struct JobState {
    id: JobId,
    tenant: String,
    status: JobStatus,
    total: u64,
    injected: u64,
    /// Walkers generated at submit, awaiting first (budgeted) admission.
    pending: VecDeque<Walker>,
    /// In-flight walkers extracted while parked; re-admission is free.
    parked: Vec<Walker>,
    result: JobResult,
    /// Explicitly suspended ([`Scheduler::suspend`]): stays parked even
    /// with budget, until [`Scheduler::resume`] hands the checkpoint
    /// back. Budget parking, by contrast, auto-resumes on top-up.
    suspended: bool,
    stream: Option<SyncSender<JobEvent>>,
    backlog: VecDeque<JobEvent>,
    /// Phase-span ring (trace identity + flight recorder, DESIGN.md §14).
    trace: JobTrace,
}

impl JobState {
    /// Work remains somewhere (pending, parked, or in the engine).
    fn live(&self) -> bool {
        matches!(
            self.status,
            JobStatus::Queued | JobStatus::Running | JobStatus::Blocked { .. }
        )
    }

    fn in_flight(&self) -> u64 {
        self.injected - self.result.finished - self.parked.len() as u64
    }
}

struct Tenant {
    budget: u64,
    spent: u64,
    /// log₂ histogram of simulated nanoseconds per step the tenant
    /// observed each pump round (bucket 0 = 0 ns, bucket i covers
    /// `[2^(i-1), 2^i)`). Pull-side only: exported as quantile gauges,
    /// never read by a scheduling decision.
    step_latency_log2: Vec<u64>,
}

/// The deterministic multiplexer: many jobs, one engine. See the module
/// docs for the scheduling and budget model.
pub struct Scheduler {
    session: Session,
    graph: Arc<Csr>,
    table: Arc<JobTable>,
    jobs: Vec<JobState>,
    tenants: BTreeMap<String, Tenant>,
    rr_cursor: usize,
    cfg: ServerConfig,
    registry: Arc<MetricRegistry>,
    pumps: u64,
    /// Host-wall epoch for span `host_ns` (latency breakdowns only —
    /// never on the deterministic path).
    epoch: Instant,
    /// The engine's event bus; job phase transitions are emitted here
    /// under scope `"server"` when a bus is attached.
    bus: EventBus,
}

impl Scheduler {
    /// Build a scheduler over `graph`. The engine is constructed once,
    /// with a [`JobTable`] of `cfg.max_jobs` slots as its single
    /// algorithm; jobs plug into the table at submit time.
    pub fn new(graph: Arc<Csr>, cfg: ServerConfig) -> Result<Self, EngineError> {
        Scheduler::with_registry(graph, cfg, Arc::new(MetricRegistry::new()))
    }

    /// Like [`Scheduler::new`] with a caller-supplied metric registry
    /// (so an embedding process exports one registry, not two).
    pub fn with_registry(
        graph: Arc<Csr>,
        mut cfg: ServerConfig,
        registry: Arc<MetricRegistry>,
    ) -> Result<Self, EngineError> {
        cfg.engine.track_tags = true;
        cfg.engine.record_paths = false;
        let table = Arc::new(JobTable::with_capacity(cfg.max_jobs));
        let session = Session::builder()
            .graph(graph.clone())
            .algorithm(table.clone())
            .config(cfg.engine.clone())
            .build()?;
        let bus = session.gpu().telemetry();
        Ok(Scheduler {
            session,
            graph,
            table,
            jobs: Vec::new(),
            tenants: BTreeMap::new(),
            rr_cursor: 0,
            cfg,
            registry,
            pumps: 0,
            epoch: Instant::now(),
            bus,
        })
    }

    /// The metric registry this scheduler reports into.
    pub fn registry(&self) -> Arc<MetricRegistry> {
        self.registry.clone()
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn tenant_entry(&mut self, tenant: &str) -> &mut Tenant {
        let default_budget = self.cfg.default_budget;
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                budget: default_budget,
                spent: 0,
                step_latency_log2: vec![0; 64],
            })
    }

    /// Submit a job for `tenant`. Returns the job handle plus the
    /// receiving end of its event stream. Fails with
    /// [`EngineError::Admission`] when the job table is full or the spec
    /// is empty.
    pub fn submit(
        &mut self,
        tenant: &str,
        spec: JobSpec,
    ) -> Result<(JobId, Receiver<JobEvent>), EngineError> {
        if spec.num_walks() == 0 {
            return Err(EngineError::Admission("job has zero walks".into()));
        }
        let tag = self.table.register(spec.algorithm.clone(), spec.seed)?;
        debug_assert_eq!(tag as usize, self.jobs.len());
        self.tenant_entry(tenant);
        let pending: VecDeque<Walker> = spec.initial_walkers(&self.graph, tag).into();
        let id = JobId(tag as u64);
        let (tx, rx) = std::sync::mpsc::sync_channel(self.cfg.stream_capacity.max(1));
        let total = pending.len() as u64;
        self.jobs.push(JobState {
            id,
            tenant: tenant.to_string(),
            status: JobStatus::Queued,
            total,
            injected: 0,
            pending,
            parked: Vec::new(),
            result: JobResult::default(),
            suspended: false,
            stream: Some(tx),
            backlog: VecDeque::new(),
            trace: JobTrace::new(
                id.0,
                tenant,
                derive_trace_id(self.cfg.engine.seed, tag),
                self.cfg.span_capacity,
            ),
        });
        let idx = self.jobs.len() - 1;
        self.record_span(idx, JobPhase::Submitted, format!("walks={total}"));
        self.record_span(idx, JobPhase::Queued, String::new());
        self.registry
            .counter(
                "lt_server_jobs_submitted_total",
                "jobs accepted by the scheduler",
                &[("tenant", tenant)],
            )
            .inc();
        Ok((id, rx))
    }

    /// Record a phase transition on one job's trace and mirror it onto
    /// the event bus. `step_clock` is the job's schedule-invariant
    /// logical clock; `sim_ns`/`host_ns` are the wall-like clocks the
    /// canonical form masks.
    fn record_span(&mut self, idx: usize, phase: JobPhase, detail: String) {
        let sim_ns = self.session.gpu().now();
        let host_ns = self.epoch.elapsed().as_nanos() as u64;
        let j = &mut self.jobs[idx];
        j.trace
            .record(phase, j.result.steps, sim_ns, host_ns, detail.clone());
        if self.bus.enabled() {
            self.bus.emit(
                Level::Info,
                sim_ns,
                "server",
                "job_phase",
                vec![
                    ("job", FieldValue::from(j.id.0)),
                    ("tenant", FieldValue::from(j.tenant.clone())),
                    (
                        "trace_id",
                        FieldValue::from(format!("{:016x}", j.trace.trace_id)),
                    ),
                    ("phase", FieldValue::from(phase.as_str())),
                    ("step_clock", FieldValue::from(j.result.steps)),
                    ("detail", FieldValue::from(detail)),
                ],
            );
        }
    }

    /// A job's current bookkeeping, or `None` for an unknown id.
    pub fn info(&self, id: JobId) -> Option<JobInfo> {
        self.jobs.get(id.0 as usize).map(|j| JobInfo {
            id: j.id,
            tenant: j.tenant.clone(),
            status: j.status.clone(),
            total_walks: j.total,
            injected: j.injected,
            finished: j.result.finished,
            steps: j.result.steps,
        })
    }

    /// A job's lifecycle state, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.jobs.get(id.0 as usize).map(|j| j.status.clone())
    }

    /// A job's accumulated result (complete once [`JobStatus::Done`],
    /// partial before then and after eviction).
    pub fn result(&self, id: JobId) -> Option<&JobResult> {
        self.jobs.get(id.0 as usize).map(|j| &j.result)
    }

    /// Cancel a job: in-flight walkers are discarded, partial results
    /// stay readable. Idempotent; `false` for unknown ids.
    pub fn cancel(&mut self, id: JobId) -> bool {
        let idx = id.0 as usize;
        if idx >= self.jobs.len() {
            return false;
        }
        if !self.jobs[idx].live() {
            return true;
        }
        if self.jobs[idx].in_flight() > 0 {
            self.session.extract_tagged(idx as u32);
        }
        let j = &mut self.jobs[idx];
        j.pending.clear();
        j.parked.clear();
        j.status = JobStatus::Evicted;
        let tenant = j.tenant.clone();
        Self::deliver(j, JobEvent::Evicted);
        self.record_span(idx, JobPhase::Evicted, "cancelled".into());
        self.dump_flight_record(idx, "evicted");
        self.registry
            .counter(
                "lt_server_jobs_evicted_total",
                "jobs cancelled or expelled",
                &[("tenant", &tenant)],
            )
            .inc();
        true
    }

    /// Grant `tokens` to `tenant` (creating it at zero if unknown, then
    /// adding). Parked jobs resume on the next pump.
    pub fn top_up(&mut self, tenant: &str, tokens: u64) {
        let t = self.tenant_entry(tenant);
        t.budget = t.budget.saturating_add(tokens);
    }

    /// Remaining tokens of `tenant` (`None` if never seen).
    pub fn budget(&self, tenant: &str) -> Option<u64> {
        self.tenants.get(tenant).map(|t| t.budget)
    }

    /// Tokens `tenant` has spent so far.
    pub fn spent(&self, tenant: &str) -> Option<u64> {
        self.tenants.get(tenant).map(|t| t.spent)
    }

    /// Suspend one job onto the checkpoint machinery: its in-flight and
    /// parked walkers are extracted into a [`Checkpoint`] (serializable,
    /// resumable on this or an equally-configured scheduler via
    /// [`Scheduler::resume`]). Walkers still pending first admission stay
    /// inside the scheduler. `None` for unknown or non-live jobs.
    pub fn suspend(&mut self, id: JobId) -> Option<Checkpoint> {
        let idx = id.0 as usize;
        if !self.jobs.get(idx)?.live() {
            return None;
        }
        let mut walkers = if self.jobs[idx].in_flight() > 0 {
            self.session.extract_tagged(idx as u32)
        } else {
            Vec::new()
        };
        let j = &mut self.jobs[idx];
        walkers.append(&mut j.parked);
        walkers.sort_unstable_by_key(|w| w.id);
        j.suspended = true;
        j.status = JobStatus::Blocked {
            reason: "suspended".into(),
        };
        Self::deliver(
            j,
            JobEvent::Blocked {
                reason: "suspended".into(),
            },
        );
        self.record_span(idx, JobPhase::Blocked, "suspended".into());
        let j = &mut self.jobs[idx];
        Some(Checkpoint {
            seed: self.cfg.engine.seed,
            epoch: self.session.epoch(),
            walkers,
            visit_counts: None,
            total_steps: j.result.steps,
            finished_walks: j.result.finished,
            shard_walkers: Vec::new(),
        })
    }

    /// Resume a suspended job from its checkpoint. The walkers re-enter
    /// the parked set (re-admission is free — their tokens were spent at
    /// first admission) and the job unblocks on the next pump.
    pub fn resume(&mut self, id: JobId, cp: Checkpoint) -> Result<(), EngineError> {
        if cp.seed != self.cfg.engine.seed {
            return Err(EngineError::SeedMismatch {
                checkpoint: cp.seed,
                engine: self.cfg.engine.seed,
            });
        }
        if cp.epoch != self.session.epoch() {
            return Err(EngineError::EpochMismatch {
                checkpoint: cp.epoch,
                engine: self.session.epoch(),
            });
        }
        let Some(j) = self.jobs.get_mut(id.0 as usize) else {
            return Err(EngineError::Admission(format!("unknown job {id}")));
        };
        if !matches!(j.status, JobStatus::Blocked { .. }) {
            return Err(EngineError::Admission(format!("{id} is not suspended")));
        }
        for w in &cp.walkers {
            if w.tag != id.0 as u32 {
                return Err(EngineError::Admission(format!(
                    "checkpoint walker tagged {} does not belong to {id}",
                    w.tag
                )));
            }
        }
        j.parked.extend(cp.walkers);
        j.suspended = false;
        j.status = if j.injected > 0 || !j.pending.is_empty() || !j.parked.is_empty() {
            JobStatus::Running
        } else {
            JobStatus::Queued
        };
        self.record_span(
            id.0 as usize,
            JobPhase::Resumed,
            "checkpoint restored".into(),
        );
        Ok(())
    }

    /// Seal `updates` as one graph epoch (DESIGN.md §15). The serving
    /// loop executes commands between pump rounds, which are exactly the
    /// scheduler-iteration barriers where mutation visibility is
    /// deterministic: walks in flight simply observe the new adjacency
    /// from their next step on. Stale resident partitions are re-copied
    /// under the session's [`lt_engine::ReloadPolicy`], and the returned
    /// summary carries the epoch, the update counts, and the reload
    /// traffic the seal charged.
    pub fn mutate(
        &mut self,
        updates: Vec<EdgeUpdate>,
    ) -> Result<lt_engine::EpochSummary, EngineError> {
        self.session.mutate(updates)?;
        self.session.seal_epoch()
    }

    /// The session's current graph epoch (0 = never mutated). Suspended
    /// jobs resume only at the epoch their checkpoint was taken at.
    pub fn epoch(&self) -> u64 {
        self.session.epoch()
    }

    /// Push `ev` to the job's stream; overflow and disconnects fall back
    /// to the in-scheduler backlog so the pump never blocks on a slow or
    /// absent consumer.
    fn deliver(j: &mut JobState, ev: JobEvent) {
        j.backlog.push_back(ev);
        Self::flush_job(j);
    }

    /// Drain as much backlog into the bounded channel as fits. Once a
    /// finished job's backlog is empty its sender is dropped, which ends
    /// the consumer's stream.
    fn flush_job(j: &mut JobState) {
        while let Some(ev) = j.backlog.pop_front() {
            match Self::try_send(&mut j.stream, ev) {
                Ok(()) => {}
                Err(ev) => {
                    j.backlog.push_front(ev);
                    break;
                }
            }
        }
        if !j.live() && j.backlog.is_empty() {
            j.stream = None;
        }
    }

    fn try_send(stream: &mut Option<SyncSender<JobEvent>>, ev: JobEvent) -> Result<(), JobEvent> {
        match stream {
            None => Ok(()), // consumer gone: drop silently, results remain queryable
            Some(tx) => match tx.try_send(ev) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(ev)) => Err(ev),
                Err(TrySendError::Disconnected(_)) => {
                    *stream = None;
                    Ok(())
                }
            },
        }
    }

    /// Retry delivery of backlogged events (a long-lived serving loop
    /// calls this between pump rounds so slow consumers still drain).
    pub fn flush_streams(&mut self) {
        for j in &mut self.jobs {
            Self::flush_job(j);
        }
    }

    /// One deterministic scheduling round: admit a tranche per runnable
    /// job (round-robin, budget-gated), drive the engine
    /// `pump_iterations` iterations, drain per-job deltas, debit step
    /// costs, park exhausted tenants, deliver events, retire finished
    /// jobs. Returns `true` while runnable work remains (parked jobs
    /// waiting on a top-up do not count).
    pub fn pump(&mut self) -> Result<bool, EngineError> {
        self.pumps += 1;
        self.admit();
        let sim_start = self.session.gpu().now();
        if self.session.active_walks() > 0 {
            if let Err(e) = self.session.step(self.cfg.pump_iterations) {
                self.on_fault(&e);
                return Err(e);
            }
        }
        let sim_elapsed = self.session.gpu().now().saturating_sub(sim_start);
        self.drain(sim_elapsed);
        self.park_exhausted();
        self.retire();
        self.flush_streams();
        let runnable = self.has_runnable_work();
        // Attribution series are pull-side monitoring state: refreshing
        // them is O(cells) of label formatting, too heavy even for the
        // idle transition (it lands inside every serve loop). They are
        // published purely on demand — [`Scheduler::refresh_observability`],
        // which the server's `metrics`/`traffic` ops call before reading
        // the registry — so the pump pays nothing for attribution.
        self.registry
            .gauge(
                "lt_server_active_walks",
                "walkers in flight inside the engine",
                &[],
            )
            .set(self.session.active_walks() as f64);
        Ok(runnable)
    }

    /// A fatal engine error ends every live job's usable timeline: mark
    /// them blocked on the fault and dump their flight records so the
    /// post-mortem (`lightwalk inspect`) sees the last spans and the
    /// traffic each job charged before the crash.
    fn on_fault(&mut self, e: &EngineError) {
        let detail = format!("engine fault: {e}");
        for idx in 0..self.jobs.len() {
            if !self.jobs[idx].live() {
                continue;
            }
            self.record_span(idx, JobPhase::Blocked, detail.clone());
            self.dump_flight_record(idx, "fault");
        }
    }

    /// Pump until nothing runnable remains. Jobs may still be parked
    /// (budget) afterwards; a top-up makes them runnable again.
    pub fn run_until_idle(&mut self) -> Result<(), EngineError> {
        while self.pump()? {}
        Ok(())
    }

    /// Runnable work remains: walkers in the engine, or a live job with
    /// admissible walkers whose tenant still holds tokens. Parked jobs
    /// waiting on a top-up are not runnable.
    pub fn has_runnable_work(&self) -> bool {
        if self.session.active_walks() > 0 {
            return true;
        }
        self.jobs.iter().any(|j| {
            j.live()
                && !j.suspended
                && (!j.pending.is_empty() || !j.parked.is_empty() || j.in_flight() > 0)
                && self.tenants[&j.tenant].budget > 0
        })
    }

    /// Round-robin admission: starting at the rotating cursor, each
    /// runnable job may admit up to `tranche_walkers` — parked walkers
    /// first (free), then fresh ones at a token each.
    fn admit(&mut self) {
        if self.jobs.is_empty() {
            return;
        }
        let n = self.jobs.len();
        let start = self.rr_cursor % n;
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        for off in 0..n {
            let idx = (start + off) % n;
            let tenant = self.jobs[idx].tenant.clone();
            let budget = self.tenants[&tenant].budget;
            let j = &mut self.jobs[idx];
            if !j.live() || j.suspended || budget == 0 {
                continue;
            }
            let was_queued = matches!(j.status, JobStatus::Queued);
            let was_blocked = matches!(j.status, JobStatus::Blocked { .. });
            let mut quota = self.cfg.tranche_walkers;
            let mut batch: Vec<Walker> = Vec::new();
            // Parked walkers re-enter free of charge.
            let take_parked = j.parked.len().min(quota);
            batch.extend(j.parked.drain(..take_parked));
            quota -= take_parked;
            // Fresh walkers are budget-gated: one token per admission.
            let fresh = (quota as u64).min(j.pending.len() as u64).min(budget);
            for _ in 0..fresh {
                batch.push(j.pending.pop_front().expect("bounded by pending.len()"));
            }
            if batch.is_empty() {
                // A blocked job with everything already in flight — or
                // nothing admissible this round.
                if matches!(&j.status, JobStatus::Blocked { .. })
                    && j.parked.is_empty()
                    && budget > 0
                {
                    j.status = JobStatus::Running;
                    self.record_span(idx, JobPhase::Resumed, "unparked".into());
                }
                continue;
            }
            j.injected += fresh;
            j.status = JobStatus::Running;
            let batch_len = batch.len();
            let t = self.tenants.get_mut(&tenant).expect("tenant registered");
            t.budget -= fresh;
            t.spent += fresh;
            self.registry
                .counter(
                    "lt_server_tenant_walkers_total",
                    "fresh walkers admitted per tenant",
                    &[("tenant", &tenant)],
                )
                .add(fresh);
            self.session.inject(batch);
            if was_queued {
                // First walkers in: the queued span ends, the running one
                // opens. Both step_clock 0, both schedule-invariant.
                self.record_span(idx, JobPhase::Admitted, format!("walkers={batch_len}"));
                self.record_span(idx, JobPhase::Running, String::new());
            } else if was_blocked {
                self.record_span(idx, JobPhase::Resumed, format!("walkers={batch_len}"));
            }
        }
    }

    /// Fold the engine's per-tag deltas into job results, debit step
    /// costs, observe per-tenant step latency, and stream progress
    /// events. `sim_elapsed` is the pump round's simulated duration.
    fn drain(&mut self, sim_elapsed: u64) {
        for delta in self.session.take_tag_deltas() {
            let idx = delta.tag as usize;
            let tenant = self.jobs[idx].tenant.clone();
            let j = &mut self.jobs[idx];
            j.result.steps += delta.steps;
            j.result.finished += delta.finished;
            j.result.visits.extend_from_slice(&delta.visits);
            j.result.lengths.extend_from_slice(&delta.lengths);
            Self::deliver(
                j,
                JobEvent::Progress {
                    steps: delta.steps,
                    finished: delta.finished,
                    visits: delta.visits,
                    lengths: delta.lengths,
                },
            );
            let t = self.tenants.get_mut(&tenant).expect("tenant registered");
            let cost = delta.steps.min(t.budget);
            t.budget -= cost;
            t.spent += delta.steps;
            // Step latency as the tenant saw it this round: simulated
            // ns elapsed per step it got. Derived from the simulated
            // clock, read pull-side only — the histogram never feeds
            // a scheduling decision.
            if let Some(ns_per_step) = sim_elapsed.checked_div(delta.steps) {
                let bucket = if ns_per_step == 0 {
                    0
                } else {
                    (64 - ns_per_step.leading_zeros() as usize).min(63)
                };
                t.step_latency_log2[bucket] += 1;
            }
            self.registry
                .counter(
                    "lt_server_tenant_steps_total",
                    "steps executed per tenant",
                    &[("tenant", &tenant)],
                )
                .add(delta.steps);
        }
    }

    /// Park every live job of every tenant whose budget ran dry: walkers
    /// come out of the engine into the job's parked set and the job turns
    /// [`JobStatus::Blocked`]. Never an error, never drops a walker.
    fn park_exhausted(&mut self) {
        for idx in 0..self.jobs.len() {
            let tenant = self.jobs[idx].tenant.clone();
            if self.tenants[&tenant].budget > 0 {
                continue;
            }
            let j = &self.jobs[idx];
            if !matches!(j.status, JobStatus::Queued | JobStatus::Running) {
                continue;
            }
            if j.in_flight() > 0 {
                let extracted = self.session.extract_tagged(idx as u32);
                self.jobs[idx].parked.extend(extracted);
            }
            let j = &mut self.jobs[idx];
            if j.pending.is_empty() && j.parked.is_empty() && j.in_flight() == 0 {
                continue; // nothing left to park; retire() decides Done
            }
            let reason = format!("tenant {tenant} budget exhausted");
            j.status = JobStatus::Blocked {
                reason: reason.clone(),
            };
            Self::deliver(
                j,
                JobEvent::Blocked {
                    reason: reason.clone(),
                },
            );
            self.record_span(idx, JobPhase::Blocked, reason);
            self.dump_flight_record(idx, "budget");
            self.registry
                .counter(
                    "lt_server_jobs_parked_total",
                    "jobs parked on budget exhaustion",
                    &[("tenant", &tenant)],
                )
                .inc();
        }
    }

    /// Promote jobs whose every walk has retired to [`JobStatus::Done`]
    /// and deliver their final result.
    fn retire(&mut self) {
        for idx in 0..self.jobs.len() {
            let j = &mut self.jobs[idx];
            if !matches!(j.status, JobStatus::Queued | JobStatus::Running) {
                continue;
            }
            let complete = j.pending.is_empty()
                && j.parked.is_empty()
                && j.injected == j.total
                && j.result.finished == j.total;
            if !complete {
                continue;
            }
            j.status = JobStatus::Done;
            // Canonical form: the visit and length multisets are
            // schedule-invariant, so the sorted vectors are the
            // bit-identical cross-schedule representation (retirement
            // order, by contrast, depends on how tenants interleave).
            j.result.visits.sort_unstable();
            j.result.lengths.sort_unstable();
            let result = j.result.clone();
            let finished = result.finished;
            Self::deliver(j, JobEvent::Done { result });
            self.record_span(idx, JobPhase::Done, format!("finished={finished}"));
        }
    }

    /// Tenant label for a ledger tag: the owning job's tenant,
    /// `"shared"` for unattributable traffic, the raw tag otherwise.
    fn tenant_of_tag(&self, tag: u32) -> String {
        if tag == SHARED_TAG {
            "shared".to_string()
        } else {
            self.jobs
                .get(tag as usize)
                .map(|j| j.tenant.clone())
                .unwrap_or_else(|| tag.to_string())
        }
    }

    /// Refresh every attribution series in the registry from current
    /// ledger/GPU/histogram state. The pump never publishes these — they
    /// are pull-side only — so anyone reading the registry directly must
    /// call this first; the server's `metrics` and `traffic` ops do it
    /// automatically.
    pub fn refresh_observability(&self) {
        self.publish_observability();
    }

    /// Project the quarantined attribution state — GPU counters, the
    /// traffic ledger, per-tenant latency histograms — into the metric
    /// registry. Pure pull: nothing here is read back by the scheduler.
    fn publish_observability(&self) {
        self.session.gpu().stats().publish(&self.registry);
        if let Some(l) = self.session.engine().traffic_ledger() {
            let mut per_tenant: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for c in l.cells() {
                let e = per_tenant
                    .entry(self.tenant_of_tag(c.tag))
                    .or_insert((0, 0));
                e.0 += c.h2d_bytes;
                e.1 += c.d2h_bytes;
            }
            for (tenant, (h2d, d2h)) in per_tenant {
                for (dir, bytes) in [("h2d", h2d), ("d2h", d2h)] {
                    self.registry
                        .counter(
                            "lt_server_tenant_traffic_bytes_total",
                            "CPU-GPU link bytes attributed per tenant and direction",
                            &[("tenant", &tenant), ("direction", dir)],
                        )
                        .set(bytes);
                }
            }
            for p in l.report(16).hot_partitions {
                let part = p.partition.to_string();
                for (dir, bytes) in [("h2d", p.h2d_bytes), ("d2h", p.d2h_bytes)] {
                    self.registry
                        .counter(
                            "lt_traffic_partition_bytes_total",
                            "CPU-GPU link bytes per graph partition and direction",
                            &[("partition", &part), ("direction", dir)],
                        )
                        .set(bytes);
                }
            }
        }
        for (tenant, t) in &self.tenants {
            for &(qname, q) in LengthPercentiles::QUANTILES.iter() {
                if let Some(v) = log2_histogram_percentile(&t.step_latency_log2, q) {
                    self.registry
                        .gauge(
                            "lt_server_tenant_step_latency_ns",
                            "Simulated ns per step a tenant observed per pump round",
                            &[("tenant", tenant), ("quantile", qname)],
                        )
                        .set(v as f64);
                }
            }
        }
    }

    /// One job's phase-span trace, or `None` for an unknown id.
    pub fn trace(&self, id: JobId) -> Option<&JobTrace> {
        self.jobs.get(id.0 as usize).map(|j| &j.trace)
    }

    /// The engine's traffic report with at most `top_k` hot partitions
    /// (`None` when attribution is disabled).
    pub fn traffic_report(&self, top_k: usize) -> Option<TrafficReport> {
        self.session
            .engine()
            .traffic_ledger()
            .map(|l| l.report(top_k))
    }

    /// Full telemetry snapshot of the underlying session (registry,
    /// pipeline report, stragglers, traffic report).
    pub fn telemetry(&self) -> lt_engine::TelemetrySnapshot {
        self.session.telemetry()
    }

    /// Build a job's flight-record JSONL on demand: a meta line, the
    /// retained spans, and the traffic rows the ledger attributes to the
    /// job. `None` for unknown ids.
    pub fn flight_record(&self, id: JobId, reason: &str) -> Option<String> {
        let j = self.jobs.get(id.0 as usize)?;
        let rows = self.job_traffic_rows(id.0 as u32);
        Some(j.trace.flight_record_jsonl(reason, &rows))
    }

    fn job_traffic_rows(&self, tag: u32) -> Vec<(u32, &'static str, u64)> {
        let Some(l) = self.session.engine().traffic_ledger() else {
            return Vec::new();
        };
        let mut rows = Vec::new();
        for c in l.cells() {
            if c.tag != tag {
                continue;
            }
            if c.h2d_bytes > 0 {
                rows.push((c.partition, "h2d", c.h2d_bytes));
            }
            if c.d2h_bytes > 0 {
                rows.push((c.partition, "d2h", c.d2h_bytes));
            }
        }
        rows
    }

    /// Write a job's flight record into `cfg.flight_recorder_dir`
    /// (no-op when unset; IO errors are swallowed — the recorder is a
    /// post-mortem aid, never a scheduling dependency).
    fn dump_flight_record(&self, idx: usize, reason: &str) {
        let Some(dir) = &self.cfg.flight_recorder_dir else {
            return;
        };
        let id = self.jobs[idx].id.0;
        if let Some(dump) = self.flight_record(JobId(id), reason) {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join(format!("flight-job{id}-{reason}.jsonl")), dump);
        }
    }

    /// Chrome trace of the whole service: the device's engine rows
    /// (when the op log was recorded) plus one process per job whose
    /// single row renders the phase spans on the simulated clock.
    pub fn chrome_trace(&self) -> String {
        let mut b = ChromeTraceBuilder::new();
        let gpu = self.session.gpu();
        lt_gpusim::trace::render_devices_into(
            &mut b,
            &[lt_gpusim::trace::DeviceTrace {
                name: "gpu 0".to_string(),
                ops: gpu.op_log(),
                faults: gpu.fault_log(),
            }],
        );
        for j in &self.jobs {
            let pid = JOB_TRACK_PID_BASE + j.id.0;
            b.process_name(pid, &format!("job {} ({})", j.id.0, j.tenant));
            b.thread_name(pid, 0, "phase");
            let spans: Vec<_> = j.trace.spans().collect();
            for w in spans.windows(2) {
                b.span(
                    pid,
                    0,
                    w[0].phase.as_str(),
                    "job",
                    w[0].sim_ns,
                    w[1].sim_ns,
                    serde_json::json!({
                        "step_clock": w[0].step_clock,
                        "detail": w[0].detail,
                        "trace_id": format!("{:016x}", j.trace.trace_id),
                    }),
                );
            }
            if let Some(last) = spans.last() {
                b.instant(
                    pid,
                    0,
                    last.phase.as_str(),
                    "job",
                    last.sim_ns,
                    serde_json::json!({
                        "step_clock": last.step_clock,
                        "detail": last.detail,
                    }),
                );
            }
        }
        b.build()
    }

    /// Jobs submitted so far (any status), in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.iter().map(|j| j.id).collect()
    }

    /// Pump rounds executed.
    pub fn pumps(&self) -> u64 {
        self.pumps
    }
}
