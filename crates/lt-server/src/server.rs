//! The serving front end: an owning scheduler thread, a cloneable
//! in-process handle, and a thread-per-connection TCP/JSONL listener.
//!
//! No async runtime: the scheduler runs on its own OS thread and talks
//! to front-end threads over plain `std::sync::mpsc` channels; each TCP
//! connection gets a dedicated thread (the connection count of a walk
//! service is small — tenants, not end users).
//!
//! # Wire protocol (JSONL)
//!
//! One JSON object per line, one reply line per request (except
//! `stream`, which emits one line per job event until the job ends):
//!
//! ```text
//! → {"op":"submit","tenant":"a","algorithm":"deepwalk","walks":100,"max_length":8,"seed":1}
//! ← {"ok":true,"job":0}
//! → {"op":"status","job":0}
//! ← {"ok":true,"job":0,"status":"running","steps":512,"finished":12,"total_walks":100}
//! → {"op":"stream","job":0}
//! ← {"event":"progress","steps":128,"finished":3,"visits":[…],"lengths":[…]}
//! ← {"event":"done","steps":800,"finished":100,"visits":[…],"lengths":[…]}
//! → {"op":"metrics"}
//! ← {"ok":true,"prometheus":"# HELP …"}
//! ```
//!
//! Other ops: `cancel {job}`, `topup {tenant,tokens}`, `budget
//! {tenant}`, `result {job}`. `submit` accepts `algorithm`
//! `"deepwalk"` or `"node2vec"` (with `p`/`q`), `walks` or explicit
//! `seeds:[v,…]`, `max_length`, `seed`.
//!
//! Evolving graphs (DESIGN.md §15): `mutate` seals an edge-update batch
//! as one graph epoch on the serving session —
//!
//! ```text
//! → {"op":"mutate","edges":[{"op":"insert","src":1,"dst":2,"t":5},{"op":"delete","src":3,"dst":4}]}
//! ← {"ok":true,"epoch":1,"inserted":1,"deleted":1,"dirty_vertices":2,"dirty_partitions":1,"reloaded_partitions":1,"reload_bytes":4096,"compacted":false}
//! ```
//!
//! Inserts take optional `t` (timestamp; defaults to the sealing epoch)
//! and `w` (weight; defaults to 1.0). The seal executes at an
//! inter-pump barrier, so running jobs observe the new adjacency
//! deterministically from their next step on.

use crate::scheduler::{JobEvent, JobInfo, JobResult, Scheduler, ServerConfig};
use lt_engine::{EdgeUpdate, EngineError, EpochSummary, JobId, JobSpec, JobStart};
use lt_graph::Csr;
use lt_telemetry::MetricRegistry;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

enum Command {
    Submit {
        tenant: String,
        spec: JobSpec,
        #[allow(clippy::type_complexity)]
        reply: SyncSender<Result<(JobId, Receiver<JobEvent>), EngineError>>,
    },
    Info {
        id: JobId,
        reply: SyncSender<Option<JobInfo>>,
    },
    Cancel {
        id: JobId,
        reply: SyncSender<bool>,
    },
    TopUp {
        tenant: String,
        tokens: u64,
        reply: SyncSender<()>,
    },
    Budget {
        tenant: String,
        reply: SyncSender<Option<(u64, u64)>>,
    },
    Result {
        id: JobId,
        reply: SyncSender<Option<JobResult>>,
    },
    Traffic {
        top_k: usize,
        reply: SyncSender<Option<lt_telemetry::TrafficReport>>,
    },
    FlightRecord {
        id: JobId,
        reason: String,
        reply: SyncSender<Option<String>>,
    },
    Mutate {
        updates: Vec<EdgeUpdate>,
        reply: SyncSender<Result<EpochSummary, EngineError>>,
    },
    Shutdown,
}

fn stopped() -> EngineError {
    EngineError::Admission("server stopped".into())
}

/// Cloneable client of a running [`Server`]: every method is a
/// synchronous request/reply exchange with the scheduler thread.
#[derive(Clone)]
pub struct ServerHandle {
    tx: Sender<Command>,
    registry: Arc<MetricRegistry>,
}

impl ServerHandle {
    fn call<T>(&self, make: impl FnOnce(SyncSender<T>) -> Command) -> Result<T, EngineError> {
        let (tx, rx) = sync_channel(1);
        self.tx.send(make(tx)).map_err(|_| stopped())?;
        rx.recv().map_err(|_| stopped())
    }

    /// Submit a job; returns its id and the receiving end of its event
    /// stream (see [`Scheduler::submit`]).
    pub fn submit(
        &self,
        tenant: &str,
        spec: JobSpec,
    ) -> Result<(JobId, Receiver<JobEvent>), EngineError> {
        self.call(|reply| Command::Submit {
            tenant: tenant.to_string(),
            spec,
            reply,
        })?
    }

    /// A job's bookkeeping snapshot.
    pub fn info(&self, id: JobId) -> Result<Option<JobInfo>, EngineError> {
        self.call(|reply| Command::Info { id, reply })
    }

    /// Cancel a job.
    pub fn cancel(&self, id: JobId) -> Result<bool, EngineError> {
        self.call(|reply| Command::Cancel { id, reply })
    }

    /// Grant tokens to a tenant; parked jobs resume.
    pub fn top_up(&self, tenant: &str, tokens: u64) -> Result<(), EngineError> {
        self.call(|reply| Command::TopUp {
            tenant: tenant.to_string(),
            tokens,
            reply,
        })
    }

    /// `(remaining, spent)` tokens of a tenant.
    pub fn budget(&self, tenant: &str) -> Result<Option<(u64, u64)>, EngineError> {
        self.call(|reply| Command::Budget {
            tenant: tenant.to_string(),
            reply,
        })
    }

    /// A job's accumulated result (complete once done).
    pub fn result(&self, id: JobId) -> Result<Option<JobResult>, EngineError> {
        self.call(|reply| Command::Result { id, reply })
    }

    /// The scheduler's traffic report with at most `top_k` hot
    /// partitions (`None` when attribution is disabled).
    pub fn traffic(
        &self,
        top_k: usize,
    ) -> Result<Option<lt_telemetry::TrafficReport>, EngineError> {
        self.call(|reply| Command::Traffic { top_k, reply })
    }

    /// A job's flight-record JSONL, built on demand (`None` for unknown
    /// jobs) — the same format the scheduler dumps on fault/eviction.
    pub fn flight_record(&self, id: JobId, reason: &str) -> Result<Option<String>, EngineError> {
        self.call(|reply| Command::FlightRecord {
            id,
            reason: reason.to_string(),
            reply,
        })
    }

    /// Seal `updates` as one graph epoch on the serving session (see
    /// [`Scheduler::mutate`]). The scheduler thread executes this at an
    /// inter-pump barrier, so jobs in flight observe the new adjacency
    /// deterministically from their next step on.
    pub fn mutate(&self, updates: Vec<EdgeUpdate>) -> Result<EpochSummary, EngineError> {
        self.call(|reply| Command::Mutate { updates, reply })?
    }

    /// The metric registry the scheduler reports into — render with
    /// [`MetricRegistry::render_prometheus`] for the ops endpoint.
    pub fn registry(&self) -> Arc<MetricRegistry> {
        self.registry.clone()
    }
}

/// A running walk service: owns the scheduler thread. Obtain clients
/// with [`Server::handle`]; dropping the server shuts the thread down.
pub struct Server {
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawn the scheduler thread over `graph`. Configuration errors
    /// surface here, on the calling thread.
    pub fn start(graph: Arc<Csr>, cfg: ServerConfig) -> Result<Server, EngineError> {
        let registry = Arc::new(MetricRegistry::new());
        let mut sched = Scheduler::with_registry(graph, cfg, registry.clone())?;
        let (tx, rx) = std::sync::mpsc::channel::<Command>();
        let thread = std::thread::Builder::new()
            .name("lt-server-scheduler".into())
            .spawn(move || serve_loop(&mut sched, &rx))
            .expect("spawn scheduler thread");
        Ok(Server {
            handle: ServerHandle { tx, registry },
            thread: Some(thread),
        })
    }

    /// A new client of this server.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Stop the scheduler thread (any in-flight work is abandoned; a
    /// graceful stop drains jobs first via [`Scheduler::run_until_idle`]
    /// semantics — pump until `submit`ted work completes, then drop).
    pub fn shutdown(mut self) {
        let _ = self.handle.tx.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.handle.tx.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The scheduler thread: interleave command handling with pump rounds;
/// park on the channel when idle (with a short timeout so backlogged
/// stream events keep draining to slow consumers).
fn serve_loop(sched: &mut Scheduler, rx: &Receiver<Command>) {
    let mut fatal: Option<EngineError> = None;
    loop {
        // Drain every queued command before the next pump round so
        // command order, not arrival timing, decides scheduling.
        loop {
            match rx.try_recv() {
                Ok(Command::Shutdown) => return,
                Ok(cmd) => handle_command(sched, cmd, &fatal),
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
            }
        }
        if fatal.is_none() && sched.has_runnable_work() {
            if let Err(e) = sched.pump() {
                fatal = Some(e);
            }
            continue;
        }
        sched.flush_streams();
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(Command::Shutdown) => return,
            Ok(cmd) => handle_command(sched, cmd, &fatal),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_command(sched: &mut Scheduler, cmd: Command, fatal: &Option<EngineError>) {
    match cmd {
        Command::Submit {
            tenant,
            spec,
            reply,
        } => {
            let r = match fatal {
                Some(e) => Err(EngineError::Admission(format!("engine failed: {e}"))),
                None => sched.submit(&tenant, spec),
            };
            let _ = reply.send(r);
        }
        Command::Info { id, reply } => {
            let _ = reply.send(sched.info(id));
        }
        Command::Cancel { id, reply } => {
            let _ = reply.send(sched.cancel(id));
        }
        Command::TopUp {
            tenant,
            tokens,
            reply,
        } => {
            sched.top_up(&tenant, tokens);
            let _ = reply.send(());
        }
        Command::Budget { tenant, reply } => {
            let b = sched.budget(&tenant).zip(sched.spent(&tenant));
            let _ = reply.send(b);
        }
        Command::Result { id, reply } => {
            let _ = reply.send(sched.result(id).cloned());
        }
        Command::Traffic { top_k, reply } => {
            // A traffic read doubles as a scrape: refresh the registry's
            // attribution series so the Prometheus text rendered next to
            // this report shows the same, current totals.
            sched.refresh_observability();
            let _ = reply.send(sched.traffic_report(top_k));
        }
        Command::FlightRecord { id, reason, reply } => {
            let _ = reply.send(sched.flight_record(id, &reason));
        }
        Command::Mutate { updates, reply } => {
            let r = match fatal {
                Some(e) => Err(EngineError::Admission(format!("engine failed: {e}"))),
                None => sched.mutate(updates),
            };
            let _ = reply.send(r);
        }
        Command::Shutdown => unreachable!("handled by the loop"),
    }
}

/// The TCP/JSONL listener: one OS thread per connection, no runtime.
pub struct TcpFrontend {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpFrontend {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting
    /// connections that speak the module-level JSONL protocol against
    /// `handle`'s server.
    pub fn bind(handle: ServerHandle, addr: &str) -> std::io::Result<TcpFrontend> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let streams: Arc<Mutex<HashMap<u64, Receiver<JobEvent>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let thread = std::thread::Builder::new()
            .name("lt-server-accept".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let h = handle.clone();
                            let s = streams.clone();
                            let _ = std::thread::Builder::new()
                                .name("lt-server-conn".into())
                                .spawn(move || {
                                    let _ = serve_connection(stream, &h, &s);
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept thread");
        Ok(TcpFrontend {
            addr: local,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting. Existing connections run until their client
    /// hangs up.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    handle: &ServerHandle,
    streams: &Mutex<HashMap<u64, Receiver<JobEvent>>>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<Value>(&line) {
            Ok(req) => dispatch(&req, handle, streams, &mut writer)?,
            Err(e) => err_json(&format!("bad json: {e:?}")),
        };
        writeln!(writer, "{reply}")?;
        writer.flush()?;
    }
    Ok(())
}

fn err_json(msg: &str) -> Value {
    json!({"ok": false, "error": msg})
}

fn get_str(req: &Value, key: &str) -> Option<String> {
    req.get(key).and_then(Value::as_str).map(str::to_string)
}

fn get_u64(req: &Value, key: &str) -> Option<u64> {
    req.get(key).and_then(Value::as_u64)
}

/// Parse a `mutate` request's edge list. Each entry is
/// `{"op":"insert"|"delete","src":u32,"dst":u32}` with optional
/// `"t"` (timestamp) and `"w"` (weight) on inserts; both default to
/// the epoch-synchronized stamp / unit weight.
fn parse_updates(req: &Value) -> Result<Vec<EdgeUpdate>, String> {
    let edges = req
        .get("edges")
        .and_then(Value::as_array)
        .ok_or("need edges")?;
    edges
        .iter()
        .map(|e| {
            let src = get_u64(e, "src").ok_or("edge needs src")?;
            let dst = get_u64(e, "dst").ok_or("edge needs dst")?;
            let (src, dst) = (
                u32::try_from(src).map_err(|_| "src out of range")?,
                u32::try_from(dst).map_err(|_| "dst out of range")?,
            );
            match get_str(e, "op").as_deref() {
                Some("insert") => {
                    let mut u = match get_u64(e, "t") {
                        Some(t) => EdgeUpdate::insert_at(
                            src,
                            dst,
                            u32::try_from(t).map_err(|_| "t out of range")?,
                        ),
                        None => EdgeUpdate::insert(src, dst),
                    };
                    u.weight = e.get("w").and_then(Value::as_f64).map(|w| w as f32);
                    Ok(u)
                }
                Some("delete") => Ok(EdgeUpdate::delete(src, dst)),
                other => Err(format!("edge op must be insert or delete, got {other:?}")),
            }
        })
        .collect()
}

fn parse_spec(req: &Value) -> Result<JobSpec, String> {
    let max_length = get_u64(req, "max_length").unwrap_or(80) as u32;
    let seed = get_u64(req, "seed").unwrap_or(0);
    let start = if let Some(seeds) = req.get("seeds").and_then(Value::as_array) {
        let vs: Option<Vec<u32>> = seeds.iter().map(|v| v.as_u64().map(|x| x as u32)).collect();
        JobStart::Seeds(vs.ok_or("seeds must be an array of vertex ids")?)
    } else {
        JobStart::WalkCount(get_u64(req, "walks").ok_or("need walks or seeds")?)
    };
    let algorithm = get_str(req, "algorithm").unwrap_or_else(|| "deepwalk".into());
    let mut spec = match algorithm.as_str() {
        "deepwalk" => JobSpec::deepwalk(0, max_length, seed),
        "node2vec" => {
            let p = req.get("p").and_then(Value::as_f64).unwrap_or(1.0);
            let q = req.get("q").and_then(Value::as_f64).unwrap_or(1.0);
            JobSpec::node2vec(0, max_length, p, q, seed)
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    spec.start = start;
    Ok(spec)
}

fn result_json(r: &JobResult) -> Value {
    json!({
        "steps": r.steps,
        "finished": r.finished,
        "visits": r.visits,
        "lengths": r.lengths,
    })
}

fn event_json(ev: &JobEvent) -> Value {
    match ev {
        JobEvent::Progress {
            steps,
            finished,
            visits,
            lengths,
        } => json!({
            "event": "progress",
            "steps": steps,
            "finished": finished,
            "visits": visits,
            "lengths": lengths,
        }),
        JobEvent::Blocked { reason } => json!({"event": "blocked", "reason": reason}),
        JobEvent::Done { result } => {
            let mut v = result_json(result);
            if let Some(obj) = v.as_object_mut() {
                obj.insert("event".into(), Value::String("done".into()));
            }
            v
        }
        JobEvent::Evicted => json!({"event": "evicted"}),
    }
}

fn dispatch(
    req: &Value,
    handle: &ServerHandle,
    streams: &Mutex<HashMap<u64, Receiver<JobEvent>>>,
    writer: &mut TcpStream,
) -> std::io::Result<Value> {
    let op = get_str(req, "op").unwrap_or_default();
    let reply = match op.as_str() {
        "submit" => {
            let tenant = get_str(req, "tenant").unwrap_or_else(|| "default".into());
            match parse_spec(req) {
                Err(e) => err_json(&e),
                Ok(spec) => match handle.submit(&tenant, spec) {
                    Err(e) => err_json(&e.to_string()),
                    Ok((id, rx)) => {
                        streams.lock().unwrap().insert(id.0, rx);
                        json!({"ok": true, "job": id.0})
                    }
                },
            }
        }
        "status" => match get_u64(req, "job") {
            None => err_json("need job"),
            Some(id) => match handle.info(JobId(id)) {
                Err(e) => err_json(&e.to_string()),
                Ok(None) => err_json("unknown job"),
                Ok(Some(i)) => json!({
                    "ok": true,
                    "job": id,
                    "tenant": i.tenant,
                    "status": i.status.label(),
                    "total_walks": i.total_walks,
                    "injected": i.injected,
                    "finished": i.finished,
                    "steps": i.steps,
                }),
            },
        },
        "cancel" => match get_u64(req, "job") {
            None => err_json("need job"),
            Some(id) => match handle.cancel(JobId(id)) {
                Err(e) => err_json(&e.to_string()),
                Ok(found) => json!({"ok": true, "cancelled": found}),
            },
        },
        "topup" => {
            let tenant = get_str(req, "tenant").unwrap_or_else(|| "default".into());
            match get_u64(req, "tokens") {
                None => err_json("need tokens"),
                Some(tokens) => match handle.top_up(&tenant, tokens) {
                    Err(e) => err_json(&e.to_string()),
                    Ok(()) => json!({"ok": true}),
                },
            }
        }
        "budget" => {
            let tenant = get_str(req, "tenant").unwrap_or_else(|| "default".into());
            match handle.budget(&tenant) {
                Err(e) => err_json(&e.to_string()),
                Ok(None) => err_json("unknown tenant"),
                Ok(Some((remaining, spent))) => {
                    json!({"ok": true, "budget": remaining, "spent": spent})
                }
            }
        }
        "result" => match get_u64(req, "job") {
            None => err_json("need job"),
            Some(id) => match handle.result(JobId(id)) {
                Err(e) => err_json(&e.to_string()),
                Ok(None) => err_json("unknown job"),
                Ok(Some(r)) => {
                    let mut v = result_json(&r);
                    if let Some(obj) = v.as_object_mut() {
                        obj.insert("ok".into(), Value::Bool(true));
                    }
                    v
                }
            },
        },
        "mutate" => match parse_updates(req) {
            Err(e) => err_json(&e),
            Ok(updates) => match handle.mutate(updates) {
                Err(e) => err_json(&e.to_string()),
                Ok(s) => json!({
                    "ok": true,
                    "epoch": s.epoch,
                    "inserted": s.inserted,
                    "deleted": s.deleted,
                    "dirty_vertices": s.dirty_vertices,
                    "dirty_partitions": s.dirty_partitions,
                    "reloaded_partitions": s.reloaded_partitions,
                    "reload_bytes": s.reload_bytes,
                    "compacted": s.compacted,
                }),
            },
        },
        "stream" => match get_u64(req, "job") {
            None => err_json("need job"),
            Some(id) => {
                let rx = streams.lock().unwrap().remove(&id);
                match rx {
                    None => err_json("no stream for job (already taken or unknown)"),
                    Some(rx) => {
                        // One line per event until the scheduler drops
                        // the sender (job done/evicted, backlog drained).
                        for ev in rx.iter() {
                            writeln!(writer, "{}", event_json(&ev))?;
                            writer.flush()?;
                        }
                        json!({"ok": true, "end": true})
                    }
                }
            }
        },
        "metrics" => {
            let traffic = match handle.traffic(8) {
                Ok(Some(r)) => serde_json::to_value(&r),
                _ => Value::Null,
            };
            json!({
                "ok": true,
                "prometheus": handle.registry().render_prometheus(),
                "traffic": traffic,
            })
        }
        "inspect" => match get_u64(req, "job") {
            None => err_json("need job"),
            Some(id) => {
                let reason = get_str(req, "reason").unwrap_or_else(|| "inspect".into());
                match handle.flight_record(JobId(id), &reason) {
                    Err(e) => err_json(&e.to_string()),
                    Ok(None) => err_json("unknown job"),
                    Ok(Some(dump)) => json!({"ok": true, "job": id, "flight_record": dump}),
                }
            }
        },
        other => err_json(&format!("unknown op {other:?}")),
    };
    Ok(reply)
}
