//! Budget lifecycle, streaming delivery, suspend/resume, and the
//! TCP/JSONL front end.

use lt_engine::{EngineConfig, JobSpec, JobStatus};
use lt_graph::gen::{rmat, RmatParams};
use lt_graph::Csr;
use lt_server::{JobEvent, Scheduler, Server, ServerConfig, TcpFrontend};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn graph() -> Arc<Csr> {
    Arc::new(
        rmat(RmatParams {
            scale: 8,
            edge_factor: 8,
            ..Default::default()
        })
        .csr,
    )
}

fn config() -> ServerConfig {
    let mut cfg = ServerConfig::new(EngineConfig::light_traffic(8 << 10, 4));
    cfg.tranche_walkers = 32;
    cfg.pump_iterations = 4;
    cfg
}

/// Exhaustion parks the job (never errors, never drops a walker); a
/// top-up resumes it to the exact result an unbudgeted run produces.
#[test]
fn budget_exhaustion_parks_then_top_up_resumes() {
    // Reference: the same job under an unlimited budget.
    let mut free = Scheduler::new(graph(), config()).unwrap();
    let (free_id, _) = free.submit("t", JobSpec::deepwalk(100, 8, 5)).unwrap();
    free.run_until_idle().unwrap();
    let want = free.result(free_id).unwrap().clone();
    assert_eq!(want.finished, 100);

    // Constrained: 100 admissions + 800 steps needed, 150 tokens granted.
    let mut cfg = config();
    cfg.default_budget = 150;
    let mut sched = Scheduler::new(graph(), cfg).unwrap();
    let (id, _rx) = sched.submit("t", JobSpec::deepwalk(100, 8, 5)).unwrap();
    sched.run_until_idle().unwrap();
    match sched.status(id).unwrap() {
        JobStatus::Blocked { reason } => assert!(reason.contains("budget"), "reason: {reason}"),
        other => panic!("expected Blocked, got {other:?}"),
    }
    assert_eq!(sched.budget("t"), Some(0));
    let partial = sched.result(id).unwrap();
    assert!(partial.finished < 100, "budget should bite before the end");

    // Walker conservation while parked: admitted walks are either
    // finished or parked, none dropped, none errored.
    let info = sched.info(id).unwrap();
    assert!(info.injected <= 100);
    assert!(info.finished <= info.injected);

    // Repeated top-ups resume and finish the job.
    let mut topups = 0;
    while sched.status(id) != Some(JobStatus::Done) {
        sched.top_up("t", 200);
        sched.run_until_idle().unwrap();
        topups += 1;
        assert!(topups < 64, "job does not converge under top-ups");
    }
    assert!(topups >= 1, "the constrained run must actually block");
    assert_eq!(
        sched.result(id).unwrap(),
        &want,
        "parked+resumed == unbudgeted"
    );
}

/// Two tenants, one starved: the starved tenant's job blocks while the
/// funded tenant's job completes; funding the starved tenant later
/// completes it with results identical to an isolated run.
#[test]
fn starved_tenant_blocks_without_impeding_others() {
    let mut iso = Scheduler::new(graph(), config()).unwrap();
    let (iso_id, _) = iso.submit("poor", JobSpec::deepwalk(60, 6, 9)).unwrap();
    iso.run_until_idle().unwrap();
    let want = iso.result(iso_id).unwrap().clone();

    let mut cfg = config();
    cfg.default_budget = 30; // not enough to even admit 60 walkers
    let mut sched = Scheduler::new(graph(), cfg).unwrap();
    let (poor, _) = sched.submit("poor", JobSpec::deepwalk(60, 6, 9)).unwrap();
    let (rich, _) = sched.submit("rich", JobSpec::deepwalk(40, 6, 11)).unwrap();
    sched.top_up("rich", 1 << 20);
    sched.run_until_idle().unwrap();
    assert_eq!(sched.status(rich), Some(JobStatus::Done));
    assert!(matches!(
        sched.status(poor),
        Some(JobStatus::Blocked { .. })
    ));

    sched.top_up("poor", 1 << 20);
    sched.run_until_idle().unwrap();
    assert_eq!(sched.status(poor), Some(JobStatus::Done));
    assert_eq!(sched.result(poor).unwrap(), &want);
}

/// The bounded stream delivers incremental progress that sums to the
/// final result, ending with the Done event.
#[test]
fn stream_delivers_incremental_progress_then_done() {
    let mut sched = Scheduler::new(graph(), config()).unwrap();
    let (id, rx) = sched.submit("t", JobSpec::deepwalk(80, 8, 2)).unwrap();
    sched.run_until_idle().unwrap();
    assert_eq!(sched.status(id), Some(JobStatus::Done));

    let events: Vec<JobEvent> = rx.iter().collect(); // sender dropped at Done
    let (mut steps, mut finished, mut visits) = (0u64, 0u64, Vec::new());
    let mut done = None;
    for ev in &events {
        match ev {
            JobEvent::Progress {
                steps: s,
                finished: f,
                visits: v,
                ..
            } => {
                steps += s;
                finished += f;
                visits.extend_from_slice(v);
            }
            JobEvent::Done { result } => done = Some(result.clone()),
            other => panic!("unexpected event {other:?}"),
        }
    }
    let done = done.expect("stream ends with Done");
    assert!(events.len() > 1, "progress arrives incrementally");
    assert_eq!(steps, done.steps);
    assert_eq!(finished, done.finished);
    visits.sort_unstable();
    assert_eq!(
        visits, done.visits,
        "streamed visits sum to the final result"
    );
    assert_eq!(sched.result(id).unwrap(), &done);
}

/// Suspend extracts a checkpoint mid-run; resume continues to the exact
/// uninterrupted result.
#[test]
fn suspend_resume_round_trips_through_a_checkpoint() {
    let mut iso = Scheduler::new(graph(), config()).unwrap();
    let (iso_id, _) = iso.submit("t", JobSpec::deepwalk(90, 8, 7)).unwrap();
    iso.run_until_idle().unwrap();
    let want = iso.result(iso_id).unwrap().clone();

    let mut sched = Scheduler::new(graph(), config()).unwrap();
    let (id, _rx) = sched.submit("t", JobSpec::deepwalk(90, 8, 7)).unwrap();
    for _ in 0..3 {
        sched.pump().unwrap();
    }
    let cp = sched.suspend(id).expect("live job suspends");
    assert!(matches!(sched.status(id), Some(JobStatus::Blocked { .. })));
    // Suspended: pumping makes no progress for this job.
    let steps_before = sched.result(id).unwrap().steps;
    sched.run_until_idle().unwrap();
    assert_eq!(sched.result(id).unwrap().steps, steps_before);

    sched.resume(id, cp).unwrap();
    sched.run_until_idle().unwrap();
    assert_eq!(sched.status(id), Some(JobStatus::Done));
    assert_eq!(sched.result(id).unwrap(), &want);
}

/// Cancellation evicts promptly and leaves partial results readable.
#[test]
fn cancel_evicts_and_keeps_partial_results() {
    let mut sched = Scheduler::new(graph(), config()).unwrap();
    let (id, rx) = sched.submit("t", JobSpec::deepwalk(100, 10, 1)).unwrap();
    for _ in 0..4 {
        sched.pump().unwrap();
    }
    assert!(sched.cancel(id));
    assert_eq!(sched.status(id), Some(JobStatus::Evicted));
    assert!(sched.cancel(id), "cancel is idempotent");
    sched.run_until_idle().unwrap();
    let events: Vec<JobEvent> = rx.iter().collect();
    assert_eq!(events.last(), Some(&JobEvent::Evicted));
    // Per-tag accounting stays sane after eviction.
    let info = sched.info(id).unwrap();
    assert!(info.steps >= sched.result(id).unwrap().steps);
}

/// Admission control: the job table rejects (never corrupts) past its
/// capacity.
#[test]
fn job_table_capacity_is_enforced() {
    let mut cfg = config();
    cfg.max_jobs = 2;
    let mut sched = Scheduler::new(graph(), cfg).unwrap();
    sched.submit("t", JobSpec::deepwalk(5, 4, 1)).unwrap();
    sched.submit("t", JobSpec::deepwalk(5, 4, 2)).unwrap();
    let err = sched.submit("t", JobSpec::deepwalk(5, 4, 3)).unwrap_err();
    assert!(err.to_string().contains("full"), "got: {err}");
    sched.run_until_idle().unwrap();
}

fn send_req(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &Value) -> Value {
    writeln!(writer, "{req}").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(&line).unwrap()
}

/// End-to-end over TCP: submit, poll status, stream, fetch the result,
/// scrape metrics — all over line-delimited JSON.
#[test]
fn tcp_frontend_serves_submit_status_stream_result_metrics() {
    let server = Server::start(graph(), config()).unwrap();
    let front = TcpFrontend::bind(server.handle(), "127.0.0.1:0").unwrap();
    let addr = front.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({
            "op": "submit", "tenant": "acme", "algorithm": "deepwalk",
            "walks": 50, "max_length": 6, "seed": 12,
        }),
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
    let job = r.get("job").and_then(Value::as_u64).unwrap();

    // Poll status until done (bounded).
    let mut status = String::new();
    for _ in 0..500 {
        let r = send_req(
            &mut writer,
            &mut reader,
            &serde_json::json!({"op": "status", "job": job}),
        );
        status = r.get("status").and_then(Value::as_str).unwrap().to_string();
        if status == "done" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(status, "done");

    // Stream the retained events on a second connection.
    let stream2 = TcpStream::connect(addr).unwrap();
    let mut w2 = stream2.try_clone().unwrap();
    let mut r2 = BufReader::new(stream2);
    writeln!(w2, "{}", serde_json::json!({"op": "stream", "job": job})).unwrap();
    w2.flush().unwrap();
    let mut saw_done = false;
    loop {
        let mut line = String::new();
        r2.read_line(&mut line).unwrap();
        let v: Value = serde_json::from_str(&line).unwrap();
        if v.get("event").and_then(Value::as_str) == Some("done") {
            saw_done = true;
            assert_eq!(v.get("finished").and_then(Value::as_u64), Some(50));
        }
        if v.get("end").is_some() {
            break;
        }
    }
    assert!(saw_done, "stream must end with the done event");

    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "result", "job": job}),
    );
    assert_eq!(r.get("finished").and_then(Value::as_u64), Some(50));
    let steps = r.get("steps").and_then(Value::as_u64).unwrap();
    assert_eq!(
        r.get("visits")
            .and_then(Value::as_array)
            .map(|v| v.len() as u64),
        Some(steps),
        "one visit per executed step"
    );

    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "metrics"}),
    );
    let text = r.get("prometheus").and_then(Value::as_str).unwrap();
    assert!(
        text.contains("lt_server_jobs_submitted_total"),
        "metrics export the serving counters: {text}"
    );

    // Budget ops round-trip.
    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "topup", "tenant": "acme", "tokens": 10}),
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "budget", "tenant": "acme"}),
    );
    assert!(r.get("spent").and_then(Value::as_u64).unwrap() > 0);

    front.shutdown();
    server.shutdown();
}
