//! The multi-tenant determinism contract (DESIGN.md §13): N concurrent
//! jobs — mixed deepwalk / node2vec — multiplexed through one engine
//! produce per-job results bit-identical to the same specs run
//! sequentially in isolation, at every `kernel_threads` × `HostExec` ×
//! fault-injection combination.

use lt_engine::{EngineConfig, HostExec, JobSpec, JobStatus};
use lt_gpusim::FaultPlan;
use lt_graph::gen::{rmat, RmatParams};
use lt_graph::Csr;
use lt_server::{JobResult, Scheduler, ServerConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn graph() -> Arc<Csr> {
    Arc::new(
        rmat(RmatParams {
            scale: 9,
            edge_factor: 8,
            ..Default::default()
        })
        .csr,
    )
}

/// The serving config under test: small partitions so jobs span many
/// batches, plus the combo's execution knobs.
fn server_config(kernel_threads: usize, host_exec: HostExec, faults: bool) -> ServerConfig {
    let mut engine = EngineConfig::light_traffic(8 << 10, 4);
    engine.kernel_threads = kernel_threads;
    engine.host_exec = host_exec;
    if faults {
        engine.gpu.faults = Some(FaultPlan::retryable_only(7, 0.05));
    }
    let mut cfg = ServerConfig::new(engine);
    cfg.tranche_walkers = 64; // force multi-round admission
    cfg.pump_iterations = 4;
    cfg
}

/// One generated job: algorithm choice, size, shape, seed.
#[derive(Clone, Debug)]
struct ArbJob {
    node2vec: bool,
    walks: u64,
    max_length: u32,
    seed: u64,
}

impl ArbJob {
    fn spec(&self) -> JobSpec {
        if self.node2vec {
            JobSpec::node2vec(self.walks, self.max_length, 0.5, 2.0, self.seed)
        } else {
            JobSpec::deepwalk(self.walks, self.max_length, self.seed)
        }
    }
}

fn job_strategy() -> impl Strategy<Value = ArbJob> {
    (any::<bool>(), 1u64..150, 2u32..9, 0u64..1000).prop_map(
        |(node2vec, walks, max_length, seed)| ArbJob {
            node2vec,
            walks,
            max_length,
            seed,
        },
    )
}

/// Run `jobs` concurrently on one scheduler and return per-job results.
fn run_multiplexed(
    jobs: &[ArbJob],
    kernel_threads: usize,
    host_exec: HostExec,
    faults: bool,
) -> Vec<JobResult> {
    let mut sched = Scheduler::new(graph(), server_config(kernel_threads, host_exec, faults))
        .expect("scheduler builds");
    let ids: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            sched
                .submit(&format!("tenant-{}", i % 2), j.spec())
                .expect("submit")
                .0
        })
        .collect();
    sched.run_until_idle().expect("multiplexed run completes");
    ids.iter()
        .map(|&id| {
            assert_eq!(sched.status(id), Some(JobStatus::Done));
            sched.result(id).unwrap().clone()
        })
        .collect()
}

/// Run each job alone on its own scheduler (the isolation reference).
fn run_isolated(
    jobs: &[ArbJob],
    kernel_threads: usize,
    host_exec: HostExec,
    faults: bool,
) -> Vec<JobResult> {
    jobs.iter()
        .map(|j| {
            let mut sched =
                Scheduler::new(graph(), server_config(kernel_threads, host_exec, faults))
                    .expect("scheduler builds");
            let (id, _rx) = sched.submit("solo", j.spec()).expect("submit");
            sched.run_until_idle().expect("isolated run completes");
            assert_eq!(sched.status(id), Some(JobStatus::Done));
            sched.result(id).unwrap().clone()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent jobs on a shared graph == the same jobs in isolation,
    /// bit for bit, across every execution combo. The isolation
    /// reference is computed once at the serial/spawn/fault-free corner;
    /// every multiplexed combo must reproduce it exactly.
    #[test]
    fn multiplexed_jobs_match_isolated_runs(jobs in prop::collection::vec(job_strategy(), 1..5)) {
        let reference = run_isolated(&jobs, 1, HostExec::Spawn, false);
        for (j, r) in jobs.iter().zip(&reference) {
            prop_assert_eq!(r.finished, j.walks);
            prop_assert_eq!(r.lengths.len() as u64, j.walks);
        }
        for &kernel_threads in &[1usize, 4] {
            for &host_exec in &[HostExec::Spawn, HostExec::Auto] {
                for &faults in &[false, true] {
                    let got = run_multiplexed(&jobs, kernel_threads, host_exec, faults);
                    prop_assert_eq!(
                        &got,
                        &reference,
                        "combo kernel_threads={} host_exec={:?} faults={}",
                        kernel_threads,
                        host_exec,
                        faults
                    );
                }
            }
        }
    }
}

/// Canonical span streams (sim/host clocks masked) for jobs run
/// concurrently on one scheduler.
fn multiplexed_spans(
    jobs: &[ArbJob],
    kernel_threads: usize,
    host_exec: HostExec,
    faults: bool,
) -> Vec<String> {
    let mut sched = Scheduler::new(graph(), server_config(kernel_threads, host_exec, faults))
        .expect("scheduler builds");
    let ids: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            sched
                .submit(&format!("tenant-{}", i % 2), j.spec())
                .expect("submit")
                .0
        })
        .collect();
    sched.run_until_idle().expect("multiplexed run completes");
    ids.iter()
        .map(|&id| sched.trace(id).expect("trace exists").canonical_jsonl())
        .collect()
}

/// Canonical span stream for each job run alone (the isolation reference).
fn isolated_spans(jobs: &[ArbJob]) -> Vec<String> {
    jobs.iter()
        .map(|j| {
            let mut sched = Scheduler::new(graph(), server_config(1, HostExec::Spawn, false))
                .expect("scheduler builds");
            let (id, _rx) = sched.submit("solo", j.spec()).expect("submit");
            sched.run_until_idle().expect("isolated run completes");
            sched.trace(id).expect("trace exists").canonical_jsonl()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The telemetry extension of the determinism contract (DESIGN.md
    /// §14): after masking both wall-like clocks, a job's span stream is
    /// bit-identical run multiplexed with other tenants vs alone — at
    /// every execution combo, including retryable fault injection. Spans
    /// are recorded only at status transitions and their details are
    /// built from schedule-invariant quantities, so not just the phases
    /// but the full canonical JSONL must agree.
    #[test]
    fn job_span_streams_match_isolated_runs(jobs in prop::collection::vec(job_strategy(), 1..4)) {
        let reference = isolated_spans(&jobs);
        for r in &reference {
            prop_assert!(r.contains("\"phase\":\"submitted\""));
            prop_assert!(r.contains("\"phase\":\"done\""));
        }
        for &kernel_threads in &[1usize, 4] {
            for &host_exec in &[HostExec::Spawn, HostExec::Auto] {
                for &faults in &[false, true] {
                    let got = multiplexed_spans(&jobs, kernel_threads, host_exec, faults);
                    prop_assert_eq!(
                        &got,
                        &reference,
                        "combo kernel_threads={} host_exec={:?} faults={}",
                        kernel_threads,
                        host_exec,
                        faults
                    );
                }
            }
        }
    }
}

/// Same job set, same submission order, different pump/tranche shape:
/// per-job results must not care how the scheduler slices rounds.
#[test]
fn results_are_invariant_to_pump_granularity() {
    let jobs = [
        ArbJob {
            node2vec: false,
            walks: 120,
            max_length: 8,
            seed: 3,
        },
        ArbJob {
            node2vec: true,
            walks: 80,
            max_length: 6,
            seed: 4,
        },
    ];
    let baseline = run_multiplexed(&jobs, 1, HostExec::Spawn, false);
    for (tranche, pump) in [(1usize, 1u64), (7, 3), (1 << 12, 64)] {
        let mut cfg = server_config(1, HostExec::Spawn, false);
        cfg.tranche_walkers = tranche;
        cfg.pump_iterations = pump;
        let mut sched = Scheduler::new(graph(), cfg).unwrap();
        let ids: Vec<_> = jobs
            .iter()
            .map(|j| sched.submit("t", j.spec()).unwrap().0)
            .collect();
        sched.run_until_idle().unwrap();
        let got: Vec<_> = ids
            .iter()
            .map(|&id| sched.result(id).unwrap().clone())
            .collect();
        assert_eq!(got, baseline, "tranche={tranche} pump={pump}");
    }
}
