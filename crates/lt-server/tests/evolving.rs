//! Evolving graphs through the serving layer (DESIGN.md §15): the
//! `mutate` command seals edge-update batches as graph epochs on the
//! shared session, new jobs observe the sealed adjacency, suspended
//! jobs stay pinned to their checkpoint epoch, and the TCP/JSONL front
//! end exposes the whole path.

use lt_engine::{EdgeUpdate, EngineConfig, EngineError, JobSpec, JobStart, JobStatus};
use lt_graph::Csr;
use lt_server::{Scheduler, Server, ServerConfig, TcpFrontend};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0`: every vertex has one
/// out-edge, so deepwalk trajectories are forced and any behavioral
/// change is attributable to the mutation under test.
fn cycle(n: u32) -> Arc<Csr> {
    let offsets = (0..=n as u64).collect();
    let edges = (0..n).map(|v| (v + 1) % n).collect();
    Arc::new(Csr::new(offsets, edges, None).unwrap())
}

fn config() -> ServerConfig {
    let mut cfg = ServerConfig::new(EngineConfig::light_traffic(8 << 10, 4));
    cfg.tranche_walkers = 32;
    cfg.pump_iterations = 4;
    cfg
}

/// A deepwalk job forced to start at vertex 0.
fn seeded_job(max_length: u32, seed: u64) -> JobSpec {
    let mut spec = JobSpec::deepwalk(0, max_length, seed);
    spec.start = JobStart::Seeds(vec![0]);
    spec
}

/// Seals advance the epoch, summaries report what actually changed, and
/// jobs submitted after a seal walk the new adjacency: rewiring the
/// cycle's vertex 1 back to 0 traps a walk seeded at 0 inside {0, 1}.
#[test]
fn mutate_seals_epochs_and_new_jobs_walk_the_new_adjacency() {
    let mut sched = Scheduler::new(cycle(64), config()).unwrap();
    assert_eq!(sched.epoch(), 0);

    let (before, _) = sched.submit("t", seeded_job(6, 3)).unwrap();
    sched.run_until_idle().unwrap();
    let visits = sched.result(before).unwrap().visits.clone();
    assert!(
        visits.iter().any(|&v| v > 1),
        "the unmutated cycle must escape {{0, 1}}: {visits:?}"
    );

    let summary = sched
        .mutate(vec![
            EdgeUpdate::delete(1, 2),
            EdgeUpdate::insert(1, 0),
            EdgeUpdate::delete(40, 0), // absent edge: a no-op
        ])
        .unwrap();
    assert_eq!(summary.epoch, 1);
    assert_eq!(sched.epoch(), 1);
    assert_eq!(summary.inserted, 1);
    assert_eq!(summary.deleted, 1);
    assert_eq!(summary.dirty_vertices, 1);

    let (after, _) = sched.submit("t", seeded_job(6, 3)).unwrap();
    sched.run_until_idle().unwrap();
    let visits = sched.result(after).unwrap().visits.clone();
    assert!(
        visits.iter().all(|&v| v <= 1),
        "post-seal walks must be trapped in the rewired 2-cycle: {visits:?}"
    );

    // An empty seal still advances the epoch but changes nothing.
    let summary = sched.mutate(Vec::new()).unwrap();
    assert_eq!(
        (summary.epoch, summary.inserted, summary.deleted),
        (2, 0, 0)
    );
    assert_eq!(summary.reload_bytes, 0);
}

/// A suspended job's checkpoint is pinned to the epoch it was taken at:
/// sealing a mutation in between makes resume refuse with
/// `EpochMismatch` instead of silently replaying on a different graph.
#[test]
fn suspended_jobs_refuse_resume_across_a_seal() {
    let mut sched = Scheduler::new(cycle(64), config()).unwrap();
    let (id, _) = sched.submit("t", JobSpec::deepwalk(64, 32, 9)).unwrap();
    sched.pump().unwrap();
    let cp = sched.suspend(id).expect("job is live");
    assert_eq!(cp.epoch, 0);

    sched.mutate(vec![EdgeUpdate::insert(5, 9)]).unwrap();
    match sched.resume(id, cp.clone()) {
        Err(EngineError::EpochMismatch { checkpoint, engine }) => {
            assert_eq!((checkpoint, engine), (0, 1));
        }
        other => panic!("stale-epoch resume must fail with EpochMismatch, got {other:?}"),
    }

    // Un-mutating is not un-sealing: even an exact inverse batch leaves
    // the epoch advanced, and the checkpoint stays refused.
    sched.mutate(vec![EdgeUpdate::delete(5, 9)]).unwrap();
    assert!(matches!(
        sched.resume(id, cp),
        Err(EngineError::EpochMismatch { .. })
    ));
    assert!(matches!(sched.status(id), Some(JobStatus::Blocked { .. })));
}

fn send_req(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &Value) -> Value {
    writeln!(writer, "{req}").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(&line).unwrap()
}

/// The `mutate` op over TCP/JSONL: a well-formed batch seals and reports
/// the epoch summary, malformed batches and out-of-range endpoints error
/// without advancing the epoch, and a job submitted afterwards walks the
/// mutated graph.
#[test]
fn tcp_mutate_seals_and_subsequent_submits_see_it() {
    let server = Server::start(cycle(64), config()).unwrap();
    let front = TcpFrontend::bind(server.handle(), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(front.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Malformed requests are rejected before reaching the scheduler.
    for bad in [
        serde_json::json!({"op": "mutate"}),
        serde_json::json!({"op": "mutate", "edges": [{"op": "upsert", "src": 1, "dst": 2}]}),
        serde_json::json!({"op": "mutate", "edges": [{"op": "insert", "src": 1}]}),
    ] {
        let r = send_req(&mut writer, &mut reader, &bad);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false), "{r}");
    }
    // A vertex outside the frozen set is refused by the engine.
    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "mutate", "edges": [{"op": "insert", "src": 9999, "dst": 0}]}),
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false), "{r}");

    // The real seal: rewire vertex 1 back to 0, with an explicit
    // timestamp and weight exercising the optional fields.
    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "mutate", "edges": [
            {"op": "delete", "src": 1, "dst": 2},
            {"op": "insert", "src": 1, "dst": 0, "t": 7, "w": 2.5},
        ]}),
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
    assert_eq!(r.get("epoch").and_then(Value::as_u64), Some(1), "{r}");
    assert_eq!(r.get("inserted").and_then(Value::as_u64), Some(1));
    assert_eq!(r.get("deleted").and_then(Value::as_u64), Some(1));
    assert_eq!(r.get("dirty_vertices").and_then(Value::as_u64), Some(1));

    // A post-seal job sees the rewired cycle: seeded at 0, its visits
    // never escape {0, 1}.
    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({
            "op": "submit", "tenant": "acme", "seeds": [0], "max_length": 6, "seed": 3,
        }),
    );
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
    let job = r.get("job").and_then(Value::as_u64).unwrap();
    let mut status = String::new();
    for _ in 0..500 {
        let r = send_req(
            &mut writer,
            &mut reader,
            &serde_json::json!({"op": "status", "job": job}),
        );
        status = r.get("status").and_then(Value::as_str).unwrap().to_string();
        if status == "done" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(status, "done");
    let r = send_req(
        &mut writer,
        &mut reader,
        &serde_json::json!({"op": "result", "job": job}),
    );
    let visits = r.get("visits").and_then(Value::as_array).unwrap();
    assert!(!visits.is_empty());
    assert!(
        visits.iter().all(|v| v.as_u64().unwrap() <= 1),
        "post-seal walks must be trapped in the rewired 2-cycle: {visits:?}"
    );

    front.shutdown();
    server.shutdown();
}
