//! Serving-layer observability acceptance: the attribution tentpole's
//! user-visible surfaces — labeled Prometheus series, the traffic
//! report, per-job traces, the composite Chrome trace, and on-demand
//! flight records — all agree with each other and with the device's own
//! counters after a multi-tenant run.

use lt_engine::{EngineConfig, JobSpec, JobStatus};
use lt_graph::gen::{rmat, RmatParams};
use lt_server::{Scheduler, ServerConfig};
use lt_telemetry::derive_trace_id;
use std::sync::Arc;

fn scheduler() -> Scheduler {
    let g = Arc::new(
        rmat(RmatParams {
            scale: 9,
            edge_factor: 8,
            ..Default::default()
        })
        .csr,
    );
    let mut cfg = ServerConfig::new(EngineConfig::light_traffic(8 << 10, 4));
    cfg.tranche_walkers = 64;
    Scheduler::new(g, cfg).expect("scheduler builds")
}

/// Sum every sample of `name` in the Prometheus text that carries all of
/// `label_filters` as `key="value"` substrings.
fn prom_sum(text: &str, name: &str, label_filters: &[(&str, &str)]) -> u64 {
    let mut sum = 0u64;
    for line in text.lines() {
        if !line.starts_with(name) || !line[name.len()..].starts_with('{') {
            continue;
        }
        if label_filters
            .iter()
            .all(|(k, v)| line.contains(&format!("{k}=\"{v}\"")))
        {
            let value = line.rsplit(' ').next().expect("prometheus sample value");
            sum += value.parse::<f64>().expect("numeric sample") as u64;
        }
    }
    sum
}

/// Distinct values of `label` across all samples of `name`.
fn prom_label_values(text: &str, name: &str, label: &str) -> Vec<String> {
    let needle = format!("{label}=\"");
    let mut out: Vec<String> = text
        .lines()
        .filter(|l| l.starts_with(name) && l[name.len()..].starts_with('{'))
        .filter_map(|l| {
            let at = l.find(&needle)? + needle.len();
            Some(l[at..l[at..].find('"')? + at].to_string())
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The headline invariant, server-side: per-tenant traffic series
/// (including the `shared` pseudo-tenant) sum to exactly the device's
/// global copy bytes, per direction — no byte unattributed, none double
/// counted.
#[test]
fn tenant_traffic_series_sum_to_global_copy_bytes() {
    let mut sched = scheduler();
    let tenants = ["acme", "beta", "corp", "dune"];
    let ids: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            sched
                .submit(t, JobSpec::deepwalk(150 + 25 * i as u64, 8, i as u64))
                .expect("submit")
                .0
        })
        .collect();
    sched.run_until_idle().expect("run completes");
    for &id in &ids {
        assert_eq!(sched.status(id), Some(JobStatus::Done));
    }

    // Attribution series publish on demand, not from the pump: a direct
    // registry read refreshes first (the server's ops do this for us).
    sched.refresh_observability();
    let text = sched.registry().render_prometheus();
    let global_h2d = prom_sum(&text, "lt_gpu_bytes_total", &[("category", "graph_load")])
        + prom_sum(&text, "lt_gpu_bytes_total", &[("category", "walk_load")])
        + prom_sum(&text, "lt_gpu_bytes_total", &[("category", "zero_copy")]);
    let global_d2h = prom_sum(&text, "lt_gpu_bytes_total", &[("category", "walk_evict")]);
    assert!(global_h2d > 0, "workload moved no bytes");

    let tenant_h2d = prom_sum(
        &text,
        "lt_server_tenant_traffic_bytes_total",
        &[("direction", "h2d")],
    );
    let tenant_d2h = prom_sum(
        &text,
        "lt_server_tenant_traffic_bytes_total",
        &[("direction", "d2h")],
    );
    assert_eq!(
        tenant_h2d, global_h2d,
        "tenant shares drift from device H2D"
    );
    assert_eq!(
        tenant_d2h, global_d2h,
        "tenant shares drift from device D2H"
    );

    // Every tenant appears, plus the shared pseudo-tenant for graph
    // partition loads.
    let seen = prom_label_values(&text, "lt_server_tenant_traffic_bytes_total", "tenant");
    for t in tenants.iter().chain(std::iter::once(&"shared")) {
        assert!(seen.iter().any(|s| s == t), "missing tenant series: {t}");
    }

    // Per-partition heat series reconcile with the same global totals.
    let part_h2d = prom_sum(
        &text,
        "lt_traffic_partition_bytes_total",
        &[("direction", "h2d")],
    );
    assert_eq!(
        part_h2d, global_h2d,
        "partition heat drifts from device H2D"
    );

    // The report view agrees too, and ranks hot partitions descending.
    let report = sched
        .traffic_report(8)
        .expect("attribution is on by default");
    assert_eq!(report.h2d_bytes, global_h2d);
    assert_eq!(report.d2h_bytes, global_d2h);
    for pair in report.hot_partitions.windows(2) {
        assert!(
            pair[0].h2d_bytes + pair[0].d2h_bytes >= pair[1].h2d_bytes + pair[1].d2h_bytes,
            "hot partitions not sorted by heat"
        );
    }

    // Step-latency quantiles exist per tenant with the full quantile set.
    let quantiles = prom_label_values(&text, "lt_server_tenant_step_latency_ns", "quantile");
    assert_eq!(quantiles, vec!["p50", "p95", "p99", "p999"]);
}

/// Per-job traces: deterministic trace ids, a full lifecycle span
/// stream, a composite Chrome trace with one named track per job, and a
/// parseable on-demand flight record.
#[test]
fn job_traces_and_flight_records_are_complete() {
    let mut sched = scheduler();
    let (a, _rx) = sched.submit("acme", JobSpec::deepwalk(120, 6, 1)).unwrap();
    let (b, _rx) = sched
        .submit("beta", JobSpec::node2vec(90, 5, 0.5, 2.0, 2))
        .unwrap();
    sched.run_until_idle().expect("run completes");

    for (i, &id) in [a, b].iter().enumerate() {
        let t = sched.trace(id).expect("trace exists");
        assert_eq!(t.trace_id, derive_trace_id(42, i as u32));
        let phases: Vec<_> = t.spans().map(|s| s.phase.as_str()).collect();
        assert_eq!(
            phases,
            vec!["submitted", "queued", "admitted", "running", "done"]
        );
        assert!(t.last().unwrap().step_clock > 0, "done span carries steps");
    }

    let trace = sched.chrome_trace();
    let v: serde_json::Value = serde_json::from_str(&trace).expect("valid trace JSON");
    let names: Vec<&str> = v
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e["name"] == "process_name")
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.contains(&"gpu 0"), "device track missing");
    assert!(
        names.contains(&"job 0 (acme)"),
        "job track missing: {names:?}"
    );
    assert!(
        names.contains(&"job 1 (beta)"),
        "job track missing: {names:?}"
    );

    let dump = sched.flight_record(a, "inspect").expect("flight record");
    let lines: Vec<serde_json::Value> = dump
        .lines()
        .map(|l| serde_json::from_str(l).expect("JSONL line"))
        .collect();
    assert_eq!(lines[0]["kind"], "meta");
    assert_eq!(lines[0]["tenant"], "acme");
    assert!(
        lines.iter().any(|l| l["kind"] == "traffic"),
        "flight record carries no traffic rows"
    );
}
