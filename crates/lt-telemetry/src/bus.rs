//! The event bus and its sinks.

use crate::event::{Event, FieldValue, Level};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Receives events from an [`EventBus`]. Sinks run under the bus lock, in
/// sequence order — keep `record` cheap (buffered writers, ring pushes).
pub trait EventSink: Send {
    /// Observe one event.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output.
    fn flush(&mut self) {}
}

struct BusState {
    seq: u64,
    sinks: Vec<Box<dyn EventSink>>,
}

struct BusInner {
    epoch: Instant,
    min_level: Level,
    state: Mutex<BusState>,
}

/// A shared, cheaply clonable event bus.
///
/// The default bus is *disabled*: a `None` handle whose
/// [`EventBus::enabled`] check is the entire cost of an instrumentation
/// site. An enabled bus stamps each event with a dense sequence number and
/// the host wall clock, then fans it out to every attached sink.
///
/// Sequence numbers are assigned under one lock in emission order; all
/// emitters in this workspace run on the driver thread (or under the
/// simulated device's mutex), so the stream order — and everything in it
/// except `host_ns` — is deterministic.
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Option<Arc<BusInner>>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "EventBus(disabled)"),
            Some(i) => write!(f, "EventBus(min_level: {})", i.min_level.name()),
        }
    }
}

impl EventBus {
    /// The disabled bus (same as `EventBus::default()`).
    pub fn disabled() -> Self {
        EventBus { inner: None }
    }

    /// An enabled bus accepting events at `min_level` and above, with no
    /// sinks attached yet.
    pub fn new(min_level: Level) -> Self {
        EventBus {
            inner: Some(Arc::new(BusInner {
                epoch: Instant::now(),
                min_level,
                state: Mutex::new(BusState {
                    seq: 0,
                    sinks: Vec::new(),
                }),
            })),
        }
    }

    /// Whether any sink could ever see an event. Check this before
    /// building field vectors at instrumentation sites.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether events at `level` pass the bus filter.
    #[inline]
    pub fn level_enabled(&self, level: Level) -> bool {
        matches!(&self.inner, Some(i) if level >= i.min_level)
    }

    /// Attach a sink. No-op on a disabled bus.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        if let Some(i) = &self.inner {
            i.state.lock().sinks.push(sink);
        }
    }

    /// Attach a bounded in-memory ring sink and return its read handle.
    /// Returns `None` on a disabled bus.
    pub fn ring(&self, capacity: usize) -> Option<RingHandle> {
        self.inner.as_ref()?;
        let handle = RingHandle::new(capacity);
        self.add_sink(Box::new(handle.clone()));
        Some(handle)
    }

    /// Emit one event. No-op when the bus is disabled or `level` is below
    /// the bus filter.
    pub fn emit(
        &self,
        level: Level,
        sim_ns: u64,
        scope: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        if level < inner.min_level {
            return;
        }
        let host_ns = inner.epoch.elapsed().as_nanos() as u64;
        let mut st = inner.state.lock();
        let seq = st.seq;
        st.seq += 1;
        let event = Event {
            seq,
            sim_ns,
            host_ns,
            level,
            scope,
            name,
            fields,
        };
        for s in st.sinks.iter_mut() {
            s.record(&event);
        }
    }

    /// Events emitted so far (0 on a disabled bus).
    pub fn emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().seq)
    }

    /// Flush every sink.
    pub fn flush(&self) {
        if let Some(i) = &self.inner {
            for s in i.state.lock().sinks.iter_mut() {
                s.flush();
            }
        }
    }
}

struct RingBuf {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// Read handle over a bounded in-memory event ring. The handle doubles as
/// the sink (attach a clone via [`EventBus::add_sink`] or use
/// [`EventBus::ring`]); when full, the oldest events drop.
#[derive(Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<RingBuf>>,
}

impl RingHandle {
    /// A standalone ring of at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingHandle {
            buf: Arc::new(Mutex::new(RingBuf {
                capacity: capacity.max(1),
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.lock().events.iter().cloned().collect()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.buf.lock().events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().dropped
    }

    /// Drop all buffered events (the drop counter keeps its value).
    pub fn clear(&self) {
        self.buf.lock().events.clear();
    }
}

impl EventSink for RingHandle {
    fn record(&mut self, event: &Event) {
        let mut b = self.buf.lock();
        if b.events.len() == b.capacity {
            b.events.pop_front();
            b.dropped += 1;
        }
        b.events.push_back(event.clone());
    }
}

/// Writes one JSON object per event to any `Write` target.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    min_level: Level,
    include_host: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing events at `min_level`+ to `writer`. With
    /// `include_host = false` the output is the deterministic form
    /// (host-wall field omitted) — byte-comparable across runs.
    pub fn new(writer: W, min_level: Level, include_host: bool) -> Self {
        JsonlSink {
            writer,
            min_level,
            include_host,
        }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if event.level < self.min_level {
            return;
        }
        let _ = writeln!(self.writer, "{}", event.to_jsonl(self.include_host));
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A buffered [`JsonlSink`] over a newly created file (host-wall fields
/// included — file sinks are for humans and offline tooling).
pub fn jsonl_file_sink(
    path: impl AsRef<std::path::Path>,
    min_level: Level,
) -> std::io::Result<Box<dyn EventSink>> {
    let f = std::fs::File::create(path)?;
    Ok(Box::new(JsonlSink::new(
        std::io::BufWriter::new(f),
        min_level,
        true,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::deterministic_jsonl;

    fn emit_n(bus: &EventBus, n: u64) {
        for i in 0..n {
            bus.emit(
                Level::Info,
                i * 10,
                "test",
                "tick",
                vec![("i", FieldValue::U64(i))],
            );
        }
    }

    #[test]
    fn disabled_bus_is_inert() {
        let bus = EventBus::default();
        assert!(!bus.enabled());
        assert!(!bus.level_enabled(Level::Error));
        assert!(bus.ring(16).is_none());
        emit_n(&bus, 100);
        assert_eq!(bus.emitted(), 0);
        bus.flush(); // must not panic
    }

    #[test]
    fn ring_buffers_and_drops_oldest() {
        let bus = EventBus::new(Level::Debug);
        let ring = bus.ring(4).unwrap();
        emit_n(&bus, 10);
        assert_eq!(bus.emitted(), 10);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest events drop first");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn level_filter_applies_at_the_bus() {
        let bus = EventBus::new(Level::Warn);
        let ring = bus.ring(16).unwrap();
        bus.emit(Level::Debug, 0, "test", "quiet", vec![]);
        bus.emit(Level::Info, 0, "test", "quiet", vec![]);
        bus.emit(Level::Warn, 1, "test", "loud", vec![]);
        bus.emit(Level::Error, 2, "test", "loud", vec![]);
        assert!(bus.level_enabled(Level::Warn));
        assert!(!bus.level_enabled(Level::Info));
        assert_eq!(ring.len(), 2);
        // Filtered-out events do not consume sequence numbers: the stream
        // stays dense whatever the filter.
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn clones_share_one_stream() {
        let bus = EventBus::new(Level::Debug);
        let ring = bus.ring(16).unwrap();
        let clone = bus.clone();
        emit_n(&bus, 2);
        emit_n(&clone, 2);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn jsonl_sink_writes_filtered_lines() {
        let bus = EventBus::new(Level::Debug);
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        bus.add_sink(Box::new(JsonlSink::new(
            Shared(buf.clone()),
            Level::Warn,
            false,
        )));
        bus.emit(Level::Debug, 5, "test", "noise", vec![]);
        bus.emit(Level::Error, 7, "test", "boom", vec![("code", 3u64.into())]);
        bus.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "debug line must be filtered: {text}");
        let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v["name"].as_str(), Some("boom"));
        assert_eq!(v["fields"]["code"].as_u64(), Some(3));
        assert!(v["host_ns"].is_null(), "deterministic form masks host_ns");
    }

    #[test]
    fn deterministic_jsonl_ignores_host_wall() {
        let run = |host_offset: u64| {
            let bus = EventBus::new(Level::Debug);
            let ring = bus.ring(64).unwrap();
            emit_n(&bus, 5);
            let mut evs = ring.snapshot();
            for e in &mut evs {
                e.host_ns += host_offset; // simulate a different wall clock
            }
            deterministic_jsonl(&evs)
        };
        assert_eq!(run(0), run(1_000_000));
    }
}
