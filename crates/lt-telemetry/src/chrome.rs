//! Chrome Trace Event (`chrome://tracing` / Perfetto) JSON builder.
//!
//! Emits the JSON array form: `ph:"X"` complete spans, `ph:"M"` process /
//! thread name metadata, and `ph:"i"` thread-scoped instants. Timestamps
//! are microseconds, so nanosecond inputs divide by 1e3 (fractional
//! microseconds are kept — the viewer accepts floats and `dur` stays
//! non-negative).

use serde::Value;
use serde_json::json;
use std::collections::BTreeSet;

/// Incremental builder for one trace file.
#[derive(Default)]
pub struct ChromeTraceBuilder {
    events: Vec<Value>,
    /// Pids already given a `process_name` record. Composed traces (device
    /// tracks + job tracks) name rows from independent writers; exactly one
    /// metadata record per pid survives — the first, so a later writer can
    /// never rename a track out from under an earlier one.
    named_processes: BTreeSet<u64>,
    /// `(pid, tid)` pairs already given a `thread_name` record.
    named_threads: BTreeSet<(u64, u64)>,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a process row (one per simulated device or per job track).
    /// Deduplicated by `pid`: the first name wins, repeats are dropped.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        if !self.named_processes.insert(pid) {
            return;
        }
        self.events.push(json!({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": { "name": name },
        }));
    }

    /// Name a thread row (one per engine within a device). Deduplicated
    /// by `(pid, tid)`: the first name wins, repeats are dropped.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        if !self.named_threads.insert((pid, tid)) {
            return;
        }
        self.events.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": tid,
            "args": { "name": name },
        }));
    }

    /// A complete (`ph:"X"`) span from `start_ns` to `end_ns`.
    #[allow(clippy::too_many_arguments)] // mirrors the Chrome trace span fields
    pub fn span(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        start_ns: u64,
        end_ns: u64,
        args: Value,
    ) {
        self.events.push(json!({
            "ph": "X",
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": us(start_ns),
            "dur": us(end_ns.saturating_sub(start_ns)),
            "args": args,
        }));
    }

    /// A thread-scoped (`"s":"t"`) instant marker.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts_ns: u64, args: Value) {
        self.events.push(json!({
            "ph": "i",
            "s": "t",
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": us(ts_ns),
            "args": args,
        }));
    }

    /// Events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the JSON array form.
    pub fn build(self) -> String {
        serde_json::to_string_pretty(&Value::Array(self.events)).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_well_formed_trace_with_nonnegative_durations() {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(1, "gpu 1");
        b.thread_name(1, 2, "compute");
        b.span(
            1,
            2,
            "kernel",
            "compute",
            1_000,
            3_500,
            json!({"stream": 0}),
        );
        b.instant(1, 2, "fault", "fault", 2_000, json!({"kind": "crash"}));
        assert_eq!(b.len(), 4);
        let text = b.build();
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e["ph"].as_str().is_some());
            if e["ph"].as_str() == Some("X") {
                assert!(e["dur"].as_f64().unwrap() >= 0.0);
            }
        }
        let span = &events[2];
        assert_eq!(span["ts"].as_f64(), Some(1.0));
        assert_eq!(span["dur"].as_f64(), Some(2.5));
        assert_eq!(span["pid"].as_u64(), Some(1));
        let instant = &events[3];
        assert_eq!(instant["s"].as_str(), Some("t"));
        assert_eq!(instant["args"]["kind"].as_str(), Some("crash"));
    }

    #[test]
    fn metadata_records_are_deduped_first_wins() {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(0, "gpu 0");
        b.process_name(0, "job 0 (tenant-a)"); // collision: dropped
        b.process_name(1000, "job 0 (tenant-a)");
        b.thread_name(0, 2, "compute");
        b.thread_name(0, 2, "phases"); // collision: dropped
        b.thread_name(1000, 0, "phases");
        let v: Value = serde_json::from_str(&b.build()).unwrap();
        let events = v.as_array().unwrap();
        let procs: Vec<_> = events
            .iter()
            .filter(|e| e["name"] == "process_name")
            .collect();
        assert_eq!(procs.len(), 2, "one process_name per pid");
        assert_eq!(procs[0]["args"]["name"].as_str(), Some("gpu 0"));
        assert_eq!(procs[1]["args"]["name"].as_str(), Some("job 0 (tenant-a)"));
        let threads: Vec<_> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .collect();
        assert_eq!(threads.len(), 2, "one thread_name per (pid, tid)");
        assert_eq!(threads[0]["args"]["name"].as_str(), Some("compute"));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        let v: Value = serde_json::from_str(&b.build()).unwrap();
        assert_eq!(v.as_array().map(Vec::len), Some(0));
    }
}
