//! Structured events stamped with both clocks.

use serde::Value;
use serde_json::Map;

/// Event severity. Ordered: `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume diagnostics (per-op records).
    Debug,
    /// Run milestones (checkpoints, completion).
    Info,
    /// Recoverable anomalies (retries, degradations, injected faults).
    Warn,
    /// Unrecoverable failures.
    Error,
}

impl Level {
    /// Lower-case name, as serialized.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(x) => Value::Number(serde::Number::U(*x)),
            FieldValue::I64(x) => Value::Number(serde::Number::I(*x)),
            FieldValue::F64(x) => Value::Number(serde::Number::F(*x)),
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::Str(s) => Value::String(s.clone()),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(x: u64) -> Self {
        FieldValue::U64(x)
    }
}
impl From<u32> for FieldValue {
    fn from(x: u32) -> Self {
        FieldValue::U64(u64::from(x))
    }
}
impl From<usize> for FieldValue {
    fn from(x: usize) -> Self {
        FieldValue::U64(x as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(x: i64) -> Self {
        FieldValue::I64(x)
    }
}
impl From<f64> for FieldValue {
    fn from(x: f64) -> Self {
        FieldValue::F64(x)
    }
}
impl From<bool> for FieldValue {
    fn from(b: bool) -> Self {
        FieldValue::Bool(b)
    }
}
impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}

/// One structured event.
///
/// The dual clocks: `sim_ns` is the deterministic simulated time the event
/// describes; `host_ns` is the host wall clock at emission (nanoseconds
/// since the bus was created). `host_ns` is the *only* non-deterministic
/// field and is excluded when serializing with `include_host = false`.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Emission order on the bus (dense, starting at 0).
    pub seq: u64,
    /// Simulated time (ns) the event describes.
    pub sim_ns: u64,
    /// Host wall time (ns since bus creation) at emission. Excluded from
    /// deterministic serializations and comparisons.
    pub host_ns: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`"gpusim"`, `"engine"`, …).
    pub scope: &'static str,
    /// Event name within the scope (`"op"`, `"iteration"`, `"retry"`, …).
    pub name: &'static str,
    /// Typed payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Render as a JSON object. With `include_host = false` the `host_ns`
    /// key is omitted, yielding the deterministic form.
    pub fn to_json(&self, include_host: bool) -> Value {
        let mut m = Map::new();
        m.insert("seq".into(), Value::Number(serde::Number::U(self.seq)));
        m.insert(
            "sim_ns".into(),
            Value::Number(serde::Number::U(self.sim_ns)),
        );
        if include_host {
            m.insert(
                "host_ns".into(),
                Value::Number(serde::Number::U(self.host_ns)),
            );
        }
        m.insert("level".into(), Value::String(self.level.name().into()));
        m.insert("scope".into(), Value::String(self.scope.into()));
        m.insert("name".into(), Value::String(self.name.into()));
        let mut fields = Map::new();
        for (k, v) in &self.fields {
            fields.insert((*k).into(), v.to_json());
        }
        m.insert("fields".into(), Value::Object(fields));
        Value::Object(m)
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self, include_host: bool) -> String {
        serde_json::to_string(&self.to_json(include_host)).expect("event serializes")
    }
}

/// Serialize a stream of events to JSONL with host-wall fields masked —
/// the canonical deterministic byte form compared across thread counts.
pub fn deterministic_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl(false));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 3,
            sim_ns: 1_500,
            host_ns: 999,
            level: Level::Warn,
            scope: "gpusim",
            name: "fault",
            fields: vec![("kind", "straggler".into()), ("engine", 2u64.into())],
        }
    }

    #[test]
    fn level_ordering_and_names_round_trip() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn host_clock_is_masked_in_deterministic_form() {
        let e = sample();
        let with = e.to_jsonl(true);
        let without = e.to_jsonl(false);
        assert!(with.contains("host_ns"));
        assert!(!without.contains("host_ns"));
        let mut e2 = e.clone();
        e2.host_ns = 123_456;
        assert_eq!(e2.to_jsonl(false), without, "host clock must not leak");
        assert_ne!(e2.to_jsonl(true), with);
    }

    #[test]
    fn jsonl_is_valid_json_with_typed_fields() {
        let v: Value = serde_json::from_str(&sample().to_jsonl(true)).unwrap();
        assert_eq!(v["seq"].as_u64(), Some(3));
        assert_eq!(v["sim_ns"].as_u64(), Some(1_500));
        assert_eq!(v["level"].as_str(), Some("warn"));
        assert_eq!(v["fields"]["kind"].as_str(), Some("straggler"));
        assert_eq!(v["fields"]["engine"].as_u64(), Some(2));
    }
}
