//! The CPU-GPU traffic ledger: exact byte attribution per
//! `(job tag, partition, direction)`.
//!
//! The paper's scarce resource is link traffic, and after the serving
//! layer multiplexes many tenants over one engine the aggregate
//! `GpuStats` counters can no longer answer *whose* traffic a burst was.
//! The ledger closes that gap: every simulated byte the engine charges on
//! the link — explicit graph loads, walk-batch loads and evictions
//! (including every retried attempt), and zero-copy kernel reads — is
//! also charged here, keyed by the owning job tag, the partition it
//! touched, and the direction it moved. The invariant, enforced by the
//! engine's integration tests, is exact equality:
//!
//! ```text
//! Σ ledger H2D cells    == GpuStats::h2d_bytes()
//! Σ ledger D2H cells    == GpuStats::d2h_bytes()
//! Σ ledger reload cells == GpuStats::reload_bytes()
//! ```
//!
//! Mutation-induced stale-partition refreshes ride the same physical
//! H2D link but are attributed under their own [`TrafficDirection::Reload`]
//! axis so the steady-state H2D equality above survives graph evolution
//! unchanged (DESIGN.md §15).
//!
//! The out-of-core substrate (DESIGN.md §16) extends the same exactness
//! one tier up: bytes decoded from the compressed on-disk graph into host
//! RAM are charged as [`TrafficDirection::HostLoad`] — not link traffic at
//! all, but the host-tier analogue of a graph load, with its own equality
//! (`Σ ledger host-load cells == Metrics::host_decode_bytes`).
//!
//! # Determinism quarantine (DESIGN.md §14)
//!
//! The ledger is *written* on the scheduler thread from simulated-side
//! quantities only (byte counts, tags, partitions — never host wall
//! time), so its contents are bit-identical across `kernel_threads`,
//! `HostExec` strategies, and retryable-fault plans. It is *read* only
//! pull-side — `Session::telemetry()`, the server's metric publication —
//! and never feeds an event stream or a scheduling decision, so enabling
//! attribution cannot perturb any deterministic fingerprint.
//!
//! Bytes with no owning job (graph-partition loads serve whoever walks
//! the partition) are charged to the reserved [`SHARED_TAG`].

use serde::Serialize;
use std::collections::BTreeMap;

/// Pseudo-tag for traffic with no single owning job: explicit graph
/// partition loads are shared infrastructure, charged here and rendered
/// as tenant `"shared"` in labeled exports.
pub const SHARED_TAG: u32 = u32::MAX;

/// Transfer direction over the CPU-GPU link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficDirection {
    /// Host to device (graph loads, walk loads, zero-copy reads).
    H2d,
    /// Device to host (walk evictions).
    D2h,
    /// Host to device refresh of a stale (mutated) partition after an
    /// epoch seal. Physically H2D, accounted separately so steady-state
    /// traffic metrics are undisturbed by graph evolution.
    Reload,
    /// Disk/page-cache to host RAM: a partition decoded from the
    /// out-of-core compressed graph (uncompressed bytes materialized).
    /// The host-memory tier of the traffic story — never part of link
    /// totals.
    HostLoad,
}

/// Number of [`TrafficDirection`] axes (per-partition storage width).
const NUM_DIRECTIONS: usize = 4;

impl TrafficDirection {
    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            TrafficDirection::H2d => "h2d",
            TrafficDirection::D2h => "d2h",
            TrafficDirection::Reload => "reload",
            TrafficDirection::HostLoad => "host_load",
        }
    }
}

/// One attributed cell: bytes moved for `(tag, partition, direction)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct TrafficCell {
    /// Owning job tag ([`SHARED_TAG`] for unattributable traffic).
    pub tag: u32,
    /// Partition whose data (graph or walkers) moved.
    pub partition: u32,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Bytes moved refreshing this partition after mutation epochs.
    pub reload_bytes: u64,
    /// Bytes decoded from the out-of-core store into host RAM.
    pub host_load_bytes: u64,
}

/// Per-partition aggregate — the "heat" ranking of [`TrafficReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PartitionHeat {
    /// The partition.
    pub partition: u32,
    /// Bytes moved host→device for this partition.
    pub h2d_bytes: u64,
    /// Bytes moved device→host for this partition.
    pub d2h_bytes: u64,
    /// Stale-partition refresh bytes for this partition.
    pub reload_bytes: u64,
    /// Out-of-core decode bytes for this partition.
    pub host_load_bytes: u64,
}

/// Per-tag aggregate with the bytes-per-step intensity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TagTraffic {
    /// The job tag ([`SHARED_TAG`] for shared traffic).
    pub tag: u32,
    /// Bytes moved host→device on this tag's behalf.
    pub h2d_bytes: u64,
    /// Bytes moved device→host on this tag's behalf.
    pub d2h_bytes: u64,
    /// Stale-partition refresh bytes on this tag's behalf.
    pub reload_bytes: u64,
    /// Out-of-core decode bytes on this tag's behalf.
    pub host_load_bytes: u64,
    /// Steps executed for this tag (0 for [`SHARED_TAG`]).
    pub steps: u64,
    /// Total bytes per executed step (0 when no steps ran).
    pub bytes_per_step: f64,
}

/// Pull-side summary of a [`TrafficLedger`]: totals, the top-K hottest
/// partitions, zero-copy savings, and per-tag traffic intensity.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TrafficReport {
    /// Total attributed bytes host→device.
    pub h2d_bytes: u64,
    /// Total attributed bytes device→host.
    pub d2h_bytes: u64,
    /// Total attributed stale-partition refresh bytes (mutation epochs).
    pub reload_bytes: u64,
    /// Total attributed out-of-core decode bytes (host tier).
    pub host_load_bytes: u64,
    /// Bytes actually moved by zero-copy kernel reads (cacheline-rounded,
    /// part of `h2d_bytes`).
    pub zero_copy_bytes: u64,
    /// Bytes an explicit partition load would have moved where a
    /// zero-copy kernel ran instead, minus the zero-copy bytes actually
    /// charged (saturating): the traffic the adaptive policy avoided.
    pub zero_copy_saved_bytes: u64,
    /// The hottest partitions by total bytes, descending (ties broken by
    /// ascending partition id), at most the requested K.
    pub hot_partitions: Vec<PartitionHeat>,
    /// Per-tag traffic in ascending tag order ([`SHARED_TAG`] last).
    pub tags: Vec<TagTraffic>,
}

/// The accumulating ledger. Plain `u64` arithmetic behind a `BTreeMap` —
/// writes happen on the engine's scheduler thread only, reads are
/// pull-side snapshots, so no interior mutability is needed.
///
/// Storage is keyed the way the write path charges: one copy touches one
/// `(partition, direction)` and splits across a handful of job tags.
/// Partition ids are small dense integers (the engine numbers them
/// 0..num_partitions), so the partition axis is a directly-indexed Vec
/// — a charge is one bounds check plus merges into a short sorted row
/// vec. The read side re-groups by tag, but reads are rare (reports,
/// scrapes) while writes ride the engine's copy path.
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    /// Indexed by partition: `[h2d rows, d2h rows, reload rows]`, each a
    /// sorted `(tag, bytes)` vec. Grown on first charge to a partition.
    cells: Vec<[Vec<(u32, u64)>; NUM_DIRECTIONS]>,
    /// Steps executed per tag (for bytes-per-step intensity).
    steps: BTreeMap<u32, u64>,
    /// Zero-copy bytes actually charged on the link.
    zero_copy_bytes: u64,
    /// Counterfactual bytes of the explicit loads that zero-copy kernels
    /// replaced.
    zero_copy_counterfactual_bytes: u64,
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `bytes` to one cell.
    pub fn charge(&mut self, tag: u32, partition: u32, dir: TrafficDirection, bytes: u64) {
        if bytes == 0 {
            return;
        }
        Self::merge_row(self.cell_mut(partition, dir), tag, bytes);
    }

    /// Charge a pre-apportioned `(tag, bytes)` split against one
    /// partition and direction. An empty or all-zero split charges
    /// nothing.
    pub fn charge_rows(&mut self, partition: u32, dir: TrafficDirection, rows: &[(u32, u64)]) {
        if !rows.iter().any(|&(_, b)| b > 0) {
            return;
        }
        let cell = self.cell_mut(partition, dir);
        for &(tag, bytes) in rows {
            if bytes > 0 {
                Self::merge_row(cell, tag, bytes);
            }
        }
    }

    fn cell_mut(&mut self, partition: u32, dir: TrafficDirection) -> &mut Vec<(u32, u64)> {
        let p = partition as usize;
        if p >= self.cells.len() {
            self.cells.resize_with(p + 1, Default::default);
        }
        &mut self.cells[p][dir as usize]
    }

    fn merge_row(rows: &mut Vec<(u32, u64)>, tag: u32, bytes: u64) {
        match rows.binary_search_by_key(&tag, |&(t, _)| t) {
            Ok(i) => rows[i].1 += bytes,
            Err(i) => rows.insert(i, (tag, bytes)),
        }
    }

    /// Record `steps` executed steps for `tag`.
    pub fn add_steps(&mut self, tag: u32, steps: u64) {
        if steps == 0 {
            return;
        }
        *self.steps.entry(tag).or_insert(0) += steps;
    }

    /// Record one zero-copy kernel: `charged` bytes actually moved over
    /// the link vs the `counterfactual` bytes an explicit partition load
    /// would have cost.
    pub fn note_zero_copy(&mut self, charged: u64, counterfactual: u64) {
        self.zero_copy_bytes += charged;
        self.zero_copy_counterfactual_bytes += counterfactual;
    }

    /// Total attributed bytes host→device. Equals
    /// `GpuStats::h2d_bytes()` exactly when attribution is on.
    pub fn h2d_bytes(&self) -> u64 {
        self.direction_total(TrafficDirection::H2d)
    }

    /// Total attributed bytes device→host. Equals
    /// `GpuStats::d2h_bytes()` exactly when attribution is on.
    pub fn d2h_bytes(&self) -> u64 {
        self.direction_total(TrafficDirection::D2h)
    }

    /// Total attributed stale-partition refresh bytes. Equals
    /// `GpuStats::reload_bytes()` exactly when attribution is on.
    pub fn reload_bytes(&self) -> u64 {
        self.direction_total(TrafficDirection::Reload)
    }

    /// Total attributed out-of-core decode bytes. Equals the engine's
    /// `Metrics::host_decode_bytes` exactly when attribution is on — the
    /// host-tier arm of the exactness invariant.
    pub fn host_load_bytes(&self) -> u64 {
        self.direction_total(TrafficDirection::HostLoad)
    }

    fn direction_total(&self, dir: TrafficDirection) -> u64 {
        self.cells
            .iter()
            .flat_map(|per_dir| per_dir[dir as usize].iter().map(|&(_, b)| b))
            .sum()
    }

    /// Steps recorded for `tag`.
    pub fn steps(&self, tag: u32) -> u64 {
        self.steps.get(&tag).copied().unwrap_or(0)
    }

    /// Every non-empty cell, in `(tag, partition, direction)` order.
    pub fn cells(&self) -> impl Iterator<Item = TrafficCell> + '_ {
        // Re-group storage's (partition, direction) rows by (tag,
        // partition); the BTreeMap re-sort restores the emitted order.
        let mut out: BTreeMap<(u32, u32), TrafficCell> = BTreeMap::new();
        for (partition, per_dir) in self.cells.iter().enumerate() {
            for (di, rows) in per_dir.iter().enumerate() {
                for &(tag, bytes) in rows {
                    let cell = out.entry((tag, partition as u32)).or_insert(TrafficCell {
                        tag,
                        partition: partition as u32,
                        h2d_bytes: 0,
                        d2h_bytes: 0,
                        reload_bytes: 0,
                        host_load_bytes: 0,
                    });
                    match di {
                        d if d == TrafficDirection::H2d as usize => cell.h2d_bytes += bytes,
                        d if d == TrafficDirection::D2h as usize => cell.d2h_bytes += bytes,
                        d if d == TrafficDirection::Reload as usize => cell.reload_bytes += bytes,
                        _ => cell.host_load_bytes += bytes,
                    }
                }
            }
        }
        out.into_values().collect::<Vec<_>>().into_iter()
    }

    /// Summarize into a [`TrafficReport`] with at most `top_k` hot
    /// partitions.
    pub fn report(&self, top_k: usize) -> TrafficReport {
        let mut by_partition: BTreeMap<u32, [u64; NUM_DIRECTIONS]> = BTreeMap::new();
        let mut by_tag: BTreeMap<u32, [u64; NUM_DIRECTIONS]> = BTreeMap::new();
        for (partition, per_dir) in self.cells.iter().enumerate() {
            for (di, rows) in per_dir.iter().enumerate() {
                for &(tag, bytes) in rows {
                    by_partition.entry(partition as u32).or_default()[di] += bytes;
                    by_tag.entry(tag).or_default()[di] += bytes;
                }
            }
        }
        let h2d = TrafficDirection::H2d as usize;
        let d2h = TrafficDirection::D2h as usize;
        let reload = TrafficDirection::Reload as usize;
        let host = TrafficDirection::HostLoad as usize;
        let mut hot: Vec<PartitionHeat> = by_partition
            .into_iter()
            .map(|(partition, b)| PartitionHeat {
                partition,
                h2d_bytes: b[h2d],
                d2h_bytes: b[d2h],
                reload_bytes: b[reload],
                host_load_bytes: b[host],
            })
            .collect();
        // Descending by total bytes; the BTreeMap iteration already
        // ordered equal totals by ascending partition id and the sort is
        // stable, so ties stay deterministic.
        hot.sort_by_key(|h| {
            std::cmp::Reverse(h.h2d_bytes + h.d2h_bytes + h.reload_bytes + h.host_load_bytes)
        });
        hot.truncate(top_k);
        // Tags that executed steps but moved no attributable bytes (pure
        // zero-copy residents) still deserve a row.
        for &tag in self.steps.keys() {
            by_tag.entry(tag).or_default();
        }
        let tags: Vec<TagTraffic> = by_tag
            .into_iter()
            .map(|(tag, b)| {
                let steps = self.steps(tag);
                TagTraffic {
                    tag,
                    h2d_bytes: b[h2d],
                    d2h_bytes: b[d2h],
                    reload_bytes: b[reload],
                    host_load_bytes: b[host],
                    steps,
                    // Intensity stays a steady-state *link* metric: reload
                    // bytes are epoch-driven and host-load bytes never
                    // cross the link, so neither contributes.
                    bytes_per_step: if steps == 0 {
                        0.0
                    } else {
                        (b[h2d] + b[d2h]) as f64 / steps as f64
                    },
                }
            })
            .collect();
        TrafficReport {
            h2d_bytes: self.h2d_bytes(),
            d2h_bytes: self.d2h_bytes(),
            reload_bytes: self.reload_bytes(),
            host_load_bytes: self.host_load_bytes(),
            zero_copy_bytes: self.zero_copy_bytes,
            zero_copy_saved_bytes: self
                .zero_copy_counterfactual_bytes
                .saturating_sub(self.zero_copy_bytes),
            hot_partitions: hot,
            tags,
        }
    }
}

/// Split `total` across `weights` proportionally with the
/// largest-remainder method, so the returned rows sum to `total`
/// *exactly* (the ledger's equality invariant tolerates no rounding
/// drift). Zero-weight entries get zero; an all-zero or empty weight set
/// returns the whole total on the first entry (or an empty vec when
/// there are no entries at all).
pub fn apportion_exact(total: u64, weights: &[(u32, u64)]) -> Vec<(u32, u64)> {
    if weights.is_empty() || total == 0 {
        return weights.iter().map(|&(t, _)| (t, 0)).collect();
    }
    let sum: u64 = weights.iter().map(|&(_, w)| w).sum();
    if sum == 0 {
        let mut rows: Vec<(u32, u64)> = weights.iter().map(|&(t, _)| (t, 0)).collect();
        rows[0].1 = total;
        return rows;
    }
    // Integer floor shares plus the K largest remainders get +1, where K
    // is the undistributed remainder. u128 keeps total*weight exact.
    let mut rows: Vec<(u32, u64)> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut distributed: u64 = 0;
    for (i, &(tag, w)) in weights.iter().enumerate() {
        let exact = total as u128 * w as u128;
        let share = (exact / sum as u128) as u64;
        remainders.push((exact % sum as u128, i));
        rows.push((tag, share));
        distributed += share;
    }
    let mut leftover = total - distributed;
    // Largest remainder first; ties broken by input position for
    // determinism.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter() {
        if leftover == 0 {
            break;
        }
        rows[i].1 += 1;
        leftover -= 1;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_cell_and_direction() {
        let mut l = TrafficLedger::new();
        l.charge(0, 2, TrafficDirection::H2d, 100);
        l.charge(0, 2, TrafficDirection::H2d, 50);
        l.charge(0, 2, TrafficDirection::D2h, 30);
        l.charge(1, 2, TrafficDirection::H2d, 7);
        l.charge(SHARED_TAG, 0, TrafficDirection::H2d, 1000);
        l.charge(0, 3, TrafficDirection::H2d, 0); // no-op
        assert_eq!(l.h2d_bytes(), 1157);
        assert_eq!(l.d2h_bytes(), 30);
        let cells: Vec<TrafficCell> = l.cells().collect();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].tag, 0);
        assert_eq!(cells[0].h2d_bytes, 150);
        assert_eq!(cells[0].d2h_bytes, 30);
        assert_eq!(cells[2].tag, SHARED_TAG);
    }

    #[test]
    fn report_ranks_partitions_and_computes_intensity() {
        let mut l = TrafficLedger::new();
        l.charge(0, 0, TrafficDirection::H2d, 10);
        l.charge(0, 1, TrafficDirection::H2d, 500);
        l.charge(1, 1, TrafficDirection::D2h, 500);
        l.charge(1, 2, TrafficDirection::H2d, 100);
        l.add_steps(0, 10);
        l.add_steps(1, 50);
        l.add_steps(9, 3); // steps without bytes still get a row
        l.note_zero_copy(64, 4096);
        let r = l.report(2);
        assert_eq!(r.h2d_bytes, 610);
        assert_eq!(r.d2h_bytes, 500);
        assert_eq!(r.zero_copy_bytes, 64);
        assert_eq!(r.zero_copy_saved_bytes, 4032);
        assert_eq!(r.hot_partitions.len(), 2);
        assert_eq!(r.hot_partitions[0].partition, 1);
        assert_eq!(
            r.hot_partitions[0].h2d_bytes + r.hot_partitions[0].d2h_bytes,
            1000
        );
        assert_eq!(r.hot_partitions[1].partition, 2);
        assert_eq!(r.tags.len(), 3);
        assert_eq!(r.tags[0].tag, 0);
        assert!((r.tags[0].bytes_per_step - 51.0).abs() < 1e-12);
        assert_eq!(r.tags[1].steps, 50);
        assert_eq!(r.tags[2].tag, 9);
        assert_eq!(r.tags[2].bytes_per_step, 0.0);
        // Report totals always equal the ledger's direction sums.
        let cell_sum: u64 = l.cells().map(|c| c.h2d_bytes + c.d2h_bytes).sum();
        assert_eq!(cell_sum, r.h2d_bytes + r.d2h_bytes);
    }

    #[test]
    fn reload_direction_is_a_separate_axis() {
        let mut l = TrafficLedger::new();
        l.charge(SHARED_TAG, 1, TrafficDirection::H2d, 100);
        l.charge(SHARED_TAG, 1, TrafficDirection::Reload, 40);
        l.charge(SHARED_TAG, 2, TrafficDirection::Reload, 60);
        // Reload bytes never leak into the steady-state direction totals.
        assert_eq!(l.h2d_bytes(), 100);
        assert_eq!(l.d2h_bytes(), 0);
        assert_eq!(l.reload_bytes(), 100);
        let cells: Vec<TrafficCell> = l.cells().collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].reload_bytes, 40);
        assert_eq!(cells[0].h2d_bytes, 100);
        assert_eq!(cells[1].reload_bytes, 60);
        let r = l.report(4);
        assert_eq!(r.reload_bytes, 100);
        assert_eq!(r.h2d_bytes, 100);
        let p1 = r.hot_partitions.iter().find(|h| h.partition == 1).unwrap();
        assert_eq!((p1.h2d_bytes, p1.reload_bytes), (100, 40));
        assert_eq!(r.tags[0].reload_bytes, 100);
        assert_eq!(TrafficDirection::Reload.label(), "reload");
    }

    #[test]
    fn host_load_direction_is_a_host_tier_axis() {
        let mut l = TrafficLedger::new();
        l.charge(SHARED_TAG, 0, TrafficDirection::H2d, 100);
        l.charge(SHARED_TAG, 0, TrafficDirection::HostLoad, 400);
        l.charge(SHARED_TAG, 3, TrafficDirection::HostLoad, 50);
        // Host-tier decode bytes never leak into link totals.
        assert_eq!(l.h2d_bytes(), 100);
        assert_eq!(l.d2h_bytes(), 0);
        assert_eq!(l.reload_bytes(), 0);
        assert_eq!(l.host_load_bytes(), 450);
        let cells: Vec<TrafficCell> = l.cells().collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].host_load_bytes, 400);
        assert_eq!(cells[0].h2d_bytes, 100);
        assert_eq!(cells[1].host_load_bytes, 50);
        let r = l.report(4);
        assert_eq!(r.host_load_bytes, 450);
        assert_eq!(r.h2d_bytes, 100);
        // Hot ranking counts the host tier (partition 0 = 500 total).
        assert_eq!(r.hot_partitions[0].partition, 0);
        assert_eq!(r.hot_partitions[0].host_load_bytes, 400);
        l.add_steps(SHARED_TAG, 10);
        let r = l.report(4);
        // bytes_per_step is link-only: 100 / 10, host-load excluded.
        assert!((r.tags[0].bytes_per_step - 10.0).abs() < 1e-12);
        assert_eq!(TrafficDirection::HostLoad.label(), "host_load");
    }

    #[test]
    fn apportion_is_exact_for_awkward_splits() {
        // 100 bytes over weights 1:1:1 — 34/33/33, sum exact.
        let rows = apportion_exact(100, &[(0, 1), (1, 1), (2, 1)]);
        assert_eq!(rows.iter().map(|r| r.1).sum::<u64>(), 100);
        assert_eq!(rows[0].1, 34);
        // Huge totals don't overflow.
        let rows = apportion_exact(u64::MAX / 2, &[(0, 3), (1, 7)]);
        assert_eq!(rows.iter().map(|r| r.1).sum::<u64>(), u64::MAX / 2);
        // Zero weights take nothing while others split everything.
        let rows = apportion_exact(10, &[(0, 0), (1, 5)]);
        assert_eq!(rows, vec![(0, 0), (1, 10)]);
        // All-zero weights: first entry absorbs the total.
        let rows = apportion_exact(10, &[(4, 0), (5, 0)]);
        assert_eq!(rows, vec![(4, 10), (5, 0)]);
        // Empty weights stay empty; zero totals charge nothing.
        assert!(apportion_exact(10, &[]).is_empty());
        assert_eq!(apportion_exact(0, &[(1, 5)]), vec![(1, 0)]);
    }

    #[test]
    fn apportion_tracks_proportions() {
        let rows = apportion_exact(1000, &[(0, 900), (1, 100)]);
        assert_eq!(rows, vec![(0, 900), (1, 100)]);
        let rows = apportion_exact(7, &[(0, 2), (1, 1)]);
        assert_eq!(rows.iter().map(|r| r.1).sum::<u64>(), 7);
        assert!(rows[0].1 >= rows[1].1);
    }
}
