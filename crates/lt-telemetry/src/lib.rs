//! Unified telemetry for the LightTraffic workspace.
//!
//! The paper's core claims are *timeline* claims — the 3-phase pipeline
//! overlap of Figure 8, the straggler dynamics of §III-E, the traffic
//! breakdowns of Table III. This crate turns those from eyeball artifacts
//! into data, with three pillars (DESIGN.md §9):
//!
//! - **Structured events** ([`Event`], [`EventBus`]): every event carries
//!   *both clocks* — the deterministic simulated nanosecond it describes
//!   and the host wall nanosecond it was emitted at — plus a level, a
//!   scope, and typed fields. Sinks are pluggable ([`EventSink`]): an
//!   in-memory ring buffer ([`RingHandle`]) and a JSONL writer
//!   ([`JsonlSink`]) ship here; the Chrome-trace exporter in `lt-gpusim`
//!   renders through [`chrome::ChromeTraceBuilder`].
//! - **A metric registry** ([`MetricRegistry`]): counters, gauges, and
//!   histograms with label sets, exported in the Prometheus text format.
//!   `Metrics` and `GpuStats` publish into it.
//! - **A pipeline analyzer** ([`pipeline::analyze`]): per-engine
//!   utilization, bubble (idle-gap) intervals, the compute/copy overlap
//!   ratio, and a straggler report from iteration records.
//!
//! # Determinism rules
//!
//! Everything except `host_ns` is a function of the simulated timeline:
//! emission happens on the driver thread (or under the device mutex) in
//! enqueue order, sequence numbers are assigned at emission, and no event
//! carries host-dependent data (thread counts, wall durations) in its
//! fields. Serializing a stream with `include_host = false` therefore
//! yields bit-identical bytes across host thread counts — asserted by the
//! engine's proptests.
//!
//! A disabled [`EventBus`] (the default) is a `None` check per potential
//! emission site: near-free, measured by `bench_telemetry`.

pub mod bus;
pub mod chrome;
pub mod event;
pub mod ledger;
pub mod pipeline;
pub mod registry;
pub mod span;

pub use bus::{jsonl_file_sink, EventBus, EventSink, JsonlSink, RingHandle};
pub use event::{Event, FieldValue, Level};
pub use ledger::{
    apportion_exact, PartitionHeat, TagTraffic, TrafficCell, TrafficDirection, TrafficLedger,
    TrafficReport, SHARED_TAG,
};
pub use pipeline::{
    straggler_report, AnalyzerConfig, Bubble, IterationSample, PipelineReport, Span,
    StragglerReport, TrackReport,
};
pub use registry::{
    log2_histogram_percentile, Counter, Gauge, Histogram, LengthPercentiles, MetricRegistry,
};
pub use span::{derive_trace_id, JobPhase, JobTrace, SpanRecord};
