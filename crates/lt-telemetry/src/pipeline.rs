//! Pipeline-bubble analysis over an op log.
//!
//! Turns the Figure 8 / §III-E timeline view into data: per-track (engine)
//! utilization, bubble (idle-gap) intervals, the overlap ratio between
//! compute and copy tracks, and a straggler report over iteration records.
//! The analyzer is pure — it consumes generic [`Span`]s so callers (the
//! GPU simulator, the multi-GPU driver) decide what a track means.

use serde::Serialize;

/// One busy interval on a track, in simulated nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Track (engine) index.
    pub track: usize,
    /// Start, simulated ns.
    pub start_ns: u64,
    /// End, simulated ns (`end_ns >= start_ns`).
    pub end_ns: u64,
}

/// An idle gap on a track.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Bubble {
    /// Gap start, simulated ns.
    pub start_ns: u64,
    /// Gap end, simulated ns.
    pub end_ns: u64,
}

impl Bubble {
    /// Gap duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Analyzer configuration: track names and which tracks count as compute
/// vs copy for the overlap ratio.
#[derive(Clone, Debug, Default)]
pub struct AnalyzerConfig {
    /// Display name per track index (missing entries render as `track N`).
    pub track_names: Vec<String>,
    /// Tracks whose busy union forms the compute side of the overlap.
    pub compute_tracks: Vec<usize>,
    /// Tracks whose busy union forms the copy side of the overlap.
    pub copy_tracks: Vec<usize>,
    /// Analysis horizon; defaults to the max span end.
    pub makespan_ns: Option<u64>,
}

/// Per-track analysis results.
#[derive(Clone, Debug, Serialize)]
pub struct TrackReport {
    /// Track index.
    pub track: usize,
    /// Display name.
    pub name: String,
    /// Number of spans on this track.
    pub ops: usize,
    /// Sum of span durations (spans on one engine never overlap, so this
    /// equals the busy-union measure).
    pub busy_ns: u64,
    /// `busy_ns / makespan_ns` (0 for an empty timeline).
    pub utilization: f64,
    /// Idle gaps over `[0, makespan_ns]`, in order.
    pub bubbles: Vec<Bubble>,
    /// Total idle time (`makespan_ns - busy-union`).
    pub bubble_ns: u64,
    /// Longest single gap.
    pub longest_bubble_ns: u64,
}

/// Whole-pipeline analysis results.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineReport {
    /// Analysis horizon, simulated ns.
    pub makespan_ns: u64,
    /// One report per track that appears in the config or the span set.
    pub tracks: Vec<TrackReport>,
    /// Time where compute and copy tracks are simultaneously busy.
    pub overlap_ns: u64,
    /// `overlap_ns` over the copy-side busy time (0 when no copy time) —
    /// the fraction of transfer time hidden behind compute.
    pub overlap_ratio: f64,
}

/// Merge spans into a sorted union of disjoint busy intervals.
fn busy_union(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn union_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

/// Total length of the intersection of two disjoint, sorted interval sets.
fn intersection_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Idle gaps in `[0, horizon]` not covered by the busy union.
fn gaps(union: &[(u64, u64)], horizon: u64) -> Vec<Bubble> {
    let mut out = Vec::new();
    let mut cursor = 0u64;
    for &(s, e) in union {
        if s > cursor {
            out.push(Bubble {
                start_ns: cursor,
                end_ns: s.min(horizon),
            });
        }
        cursor = cursor.max(e);
        if cursor >= horizon {
            break;
        }
    }
    if cursor < horizon {
        out.push(Bubble {
            start_ns: cursor,
            end_ns: horizon,
        });
    }
    out.retain(|b| b.end_ns > b.start_ns);
    out
}

/// Analyze a span set. See [`PipelineReport`].
pub fn analyze(spans: &[Span], cfg: &AnalyzerConfig) -> PipelineReport {
    let max_end = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
    let makespan_ns = cfg.makespan_ns.unwrap_or(max_end).max(max_end);
    let n_tracks = spans
        .iter()
        .map(|s| s.track + 1)
        .chain(std::iter::once(cfg.track_names.len()))
        .max()
        .unwrap_or(0);

    let mut tracks = Vec::with_capacity(n_tracks);
    let mut unions: Vec<Vec<(u64, u64)>> = Vec::with_capacity(n_tracks);
    for t in 0..n_tracks {
        let iv: Vec<(u64, u64)> = spans
            .iter()
            .filter(|s| s.track == t)
            .map(|s| (s.start_ns, s.end_ns))
            .collect();
        let ops = iv.len();
        let busy_ns: u64 = iv.iter().map(|(s, e)| e - s).sum();
        let union = busy_union(iv);
        let bubbles = gaps(&union, makespan_ns);
        let bubble_ns: u64 = bubbles.iter().map(Bubble::duration_ns).sum();
        let longest_bubble_ns = bubbles.iter().map(Bubble::duration_ns).max().unwrap_or(0);
        tracks.push(TrackReport {
            track: t,
            name: cfg
                .track_names
                .get(t)
                .cloned()
                .unwrap_or_else(|| format!("track {t}")),
            ops,
            busy_ns,
            utilization: if makespan_ns == 0 {
                0.0
            } else {
                busy_ns as f64 / makespan_ns as f64
            },
            bubbles,
            bubble_ns,
            longest_bubble_ns,
        });
        unions.push(union);
    }

    let side = |idx: &[usize]| {
        busy_union(
            idx.iter()
                .filter_map(|&t| unions.get(t))
                .flatten()
                .copied()
                .collect(),
        )
    };
    let compute = side(&cfg.compute_tracks);
    let copy = side(&cfg.copy_tracks);
    let overlap_ns = intersection_len(&compute, &copy);
    let copy_busy = union_len(&copy);
    let overlap_ratio = if copy_busy == 0 {
        0.0
    } else {
        overlap_ns as f64 / copy_busy as f64
    };

    PipelineReport {
        makespan_ns,
        tracks,
        overlap_ns,
        overlap_ratio,
    }
}

/// One iteration record, as the straggler analysis sees it.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IterationSample {
    /// Iteration index.
    pub index: u64,
    /// Iteration start, simulated ns.
    pub start_ns: u64,
    /// Active walkers this iteration.
    pub walks: u64,
}

/// Straggler summary over a run's iteration records (§III-E: a long tail
/// of iterations serving ever-fewer surviving walks).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StragglerReport {
    /// Iterations observed.
    pub iterations: u64,
    /// Peak active walkers in any iteration.
    pub max_walks: u64,
    /// Mean active walkers per iteration.
    pub mean_walks: f64,
    /// First iteration index whose active walkers fell below 10% of peak
    /// (the tail threshold); equals `iterations` when there is no tail.
    pub tail_start_index: u64,
    /// Fraction of the run's time span spent in the tail.
    pub tail_fraction_time: f64,
}

/// Build a [`StragglerReport`]; `None` when there are no samples.
pub fn straggler_report(samples: &[IterationSample], makespan_ns: u64) -> Option<StragglerReport> {
    if samples.is_empty() {
        return None;
    }
    let max_walks = samples.iter().map(|s| s.walks).max().unwrap_or(0);
    let mean_walks = samples.iter().map(|s| s.walks).sum::<u64>() as f64 / samples.len() as f64;
    let threshold = max_walks / 10;
    let tail = samples
        .iter()
        .find(|s| s.walks < threshold.max(1) && s.walks < max_walks);
    let (tail_start_index, tail_fraction_time) = match tail {
        Some(s) => {
            let span = makespan_ns.max(samples.iter().map(|s| s.start_ns).max().unwrap_or(0));
            let frac = if span == 0 {
                0.0
            } else {
                (span.saturating_sub(s.start_ns)) as f64 / span as f64
            };
            (s.index, frac)
        }
        None => (samples.len() as u64, 0.0),
    };
    Some(StragglerReport {
        iterations: samples.len() as u64,
        max_walks,
        mean_walks,
        tail_start_index,
        tail_fraction_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: usize, start_ns: u64, end_ns: u64) -> Span {
        Span {
            track,
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn empty_timeline() {
        let r = analyze(&[], &AnalyzerConfig::default());
        assert_eq!(r.makespan_ns, 0);
        assert!(r.tracks.is_empty());
        assert_eq!(r.overlap_ns, 0);
        assert_eq!(r.overlap_ratio, 0.0);
        assert!(straggler_report(&[], 0).is_none());
    }

    #[test]
    fn utilization_times_makespan_equals_busy_time() {
        // The acceptance-criteria identity: for every track,
        // utilization · makespan == summed span durations.
        let spans = vec![
            span(0, 0, 100),
            span(0, 150, 250),
            span(1, 300, 400),
            span(2, 50, 350),
        ];
        let r = analyze(&spans, &AnalyzerConfig::default());
        assert_eq!(r.makespan_ns, 400);
        for t in &r.tracks {
            let expect: u64 = spans
                .iter()
                .filter(|s| s.track == t.track)
                .map(|s| s.end_ns - s.start_ns)
                .sum();
            assert_eq!(t.busy_ns, expect);
            let recovered = t.utilization * r.makespan_ns as f64;
            assert!(
                (recovered - expect as f64).abs() < 1e-6,
                "track {}: {} vs {}",
                t.track,
                recovered,
                expect
            );
        }
    }

    #[test]
    fn bubbles_cover_leading_middle_and_trailing_idle() {
        let spans = vec![span(0, 100, 200), span(0, 300, 400)];
        let cfg = AnalyzerConfig {
            makespan_ns: Some(500),
            ..Default::default()
        };
        let r = analyze(&spans, &cfg);
        let t = &r.tracks[0];
        assert_eq!(
            t.bubbles,
            vec![
                Bubble {
                    start_ns: 0,
                    end_ns: 100
                },
                Bubble {
                    start_ns: 200,
                    end_ns: 300
                },
                Bubble {
                    start_ns: 400,
                    end_ns: 500
                },
            ]
        );
        assert_eq!(t.bubble_ns, 300);
        assert_eq!(t.longest_bubble_ns, 100);
        assert_eq!(t.busy_ns + t.bubble_ns, r.makespan_ns);
    }

    #[test]
    fn overlap_ratio_measures_hidden_copy_time() {
        // Copy busy [0,100) and [200,300); compute busy [50,250).
        // Intersection: [50,100) + [200,250) = 100 of 200 copy ns hidden.
        let spans = vec![span(0, 0, 100), span(1, 200, 300), span(2, 50, 250)];
        let cfg = AnalyzerConfig {
            compute_tracks: vec![2],
            copy_tracks: vec![0, 1],
            ..Default::default()
        };
        let r = analyze(&spans, &cfg);
        assert_eq!(r.overlap_ns, 100);
        assert!((r.overlap_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_with_no_copy_time_is_zero() {
        let spans = vec![span(2, 0, 100)];
        let cfg = AnalyzerConfig {
            compute_tracks: vec![2],
            copy_tracks: vec![0, 1],
            ..Default::default()
        };
        let r = analyze(&spans, &cfg);
        assert_eq!(r.overlap_ns, 0);
        assert_eq!(r.overlap_ratio, 0.0);
    }

    #[test]
    fn track_names_apply_and_pad() {
        let cfg = AnalyzerConfig {
            track_names: vec!["h2d".into(), "d2h".into(), "compute".into()],
            ..Default::default()
        };
        let r = analyze(&[span(3, 0, 10)], &cfg);
        assert_eq!(r.tracks.len(), 4);
        assert_eq!(r.tracks[0].name, "h2d");
        assert_eq!(r.tracks[3].name, "track 3");
        assert_eq!(r.tracks[3].ops, 1);
    }

    #[test]
    fn straggler_tail_detection() {
        // 1000 walks for 5 iterations, then a tail of 10-walk iterations.
        let mut samples = Vec::new();
        for i in 0..5u64 {
            samples.push(IterationSample {
                index: i,
                start_ns: i * 100,
                walks: 1000,
            });
        }
        for i in 5..20u64 {
            samples.push(IterationSample {
                index: i,
                start_ns: i * 100,
                walks: 10,
            });
        }
        let r = straggler_report(&samples, 2000).unwrap();
        assert_eq!(r.iterations, 20);
        assert_eq!(r.max_walks, 1000);
        assert_eq!(r.tail_start_index, 5);
        assert!((r.tail_fraction_time - 0.75).abs() < 1e-12);
        // No tail when every iteration is at peak.
        let flat: Vec<IterationSample> = (0..4)
            .map(|i| IterationSample {
                index: i,
                start_ns: i * 10,
                walks: 100,
            })
            .collect();
        let r = straggler_report(&flat, 40).unwrap();
        assert_eq!(r.tail_start_index, 4);
        assert_eq!(r.tail_fraction_time, 0.0);
    }
}
