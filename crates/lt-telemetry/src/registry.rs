//! Counter / gauge / histogram registry with Prometheus text export.
//!
//! Handles are cheap clones of shared atomics; the registry renders every
//! family in the Prometheus text exposition format (`# HELP` / `# TYPE`
//! headers, one `name{labels} value` line per series, cumulative
//! `_bucket{le=...}` plus `_sum`/`_count` for histograms). Registering the
//! same name + label set twice returns the same underlying series.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing (or snapshot-set) integer series.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. Intended for publishing an already-accumulated
    /// snapshot (e.g. `Metrics` after a run), not for live counting.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable float series.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

struct HistData {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the trailing `+Inf` bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// A histogram series with fixed bucket bounds.
#[derive(Clone)]
pub struct Histogram {
    data: Arc<Mutex<HistData>>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of the same value (bulk publish).
    pub fn observe_n(&self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let mut d = self.data.lock();
        let idx = d
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(d.bounds.len());
        d.counts[idx] += n;
        d.sum += value * n as f64;
        d.count += n;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.data.lock().count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.data.lock().sum
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) by linear interpolation
    /// within the bucket holding the target rank. Observations in the
    /// overflow (`+Inf`) bucket report the largest finite bound. Returns
    /// `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let d = self.data.lock();
        if d.count == 0 {
            return None;
        }
        let rank = (q * d.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in d.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum >= rank {
                if i >= d.bounds.len() {
                    // Overflow bucket: no finite upper bound to interpolate
                    // toward; report the last finite bound (or the sum-mean
                    // when there are no finite buckets at all).
                    return Some(d.bounds.last().copied().unwrap_or(d.sum / d.count as f64));
                }
                let lo = if i == 0 { 0.0 } else { d.bounds[i - 1] };
                let hi = d.bounds[i];
                let frac = if *c == 0 {
                    1.0
                } else {
                    (rank - prev) as f64 / *c as f64
                };
                return Some(lo + (hi - lo) * frac);
            }
        }
        None
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn type_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label block (`{a="x",b="y"}` or empty).
    series: BTreeMap<String, Series>,
}

struct RegInner {
    families: BTreeMap<String, Family>,
}

/// A shared metric registry. Clones share the same metric store.
#[derive(Clone)]
pub struct MetricRegistry {
    inner: Arc<Mutex<RegInner>>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b == b'_' || b.is_ascii_lowercase() || (i > 0 && b.is_ascii_digit()))
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| {
            debug_assert!(valid_name(k), "invalid label name {k:?}");
            format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry {
            inner: Arc::new(Mutex::new(RegInner {
                families: BTreeMap::new(),
            })),
        }
    }

    fn family<'a>(inner: &'a mut RegInner, name: &str, help: &str, kind: Kind) -> &'a mut Family {
        assert!(
            valid_name(name),
            "metric name {name:?} must match [a-z_][a-z0-9_]*"
        );
        let fam = inner.families.entry(name.to_string()).or_insert(Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name:?} registered with two different types"
        );
        fam
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut inner = self.inner.lock();
        let fam = Self::family(&mut inner, name, help, Kind::Counter);
        let series = fam.series.entry(render_labels(labels)).or_insert_with(|| {
            Series::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        });
        match series {
            Series::Counter(c) => c.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut inner = self.inner.lock();
        let fam = Self::family(&mut inner, name, help, Kind::Gauge);
        let series = fam.series.entry(render_labels(labels)).or_insert_with(|| {
            Series::Gauge(Gauge {
                cell: Arc::new(AtomicU64::new(0.0f64.to_bits())),
            })
        });
        match series {
            Series::Gauge(g) => g.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get or create a histogram series with the given finite bucket
    /// bounds (must be strictly increasing; a `+Inf` bucket is implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut inner = self.inner.lock();
        let fam = Self::family(&mut inner, name, help, Kind::Histogram);
        let series = fam.series.entry(render_labels(labels)).or_insert_with(|| {
            Series::Histogram(Histogram {
                data: Arc::new(Mutex::new(HistData {
                    bounds: bounds.to_vec(),
                    counts: vec![0; bounds.len() + 1],
                    sum: 0.0,
                    count: 0,
                })),
            })
        });
        match series {
            Series::Histogram(h) => h.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Render every family in the Prometheus text exposition format.
    /// Families and series are emitted in sorted order, so the output is
    /// deterministic for a given set of values.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, fam) in &inner.families {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.type_name()));
            for (labels, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_f64(g.get())));
                    }
                    Series::Histogram(h) => {
                        let d = h.data.lock();
                        let mut cum = 0u64;
                        for (i, b) in d.bounds.iter().enumerate() {
                            cum += d.counts[i];
                            let le = bucket_labels(labels, &fmt_f64(*b));
                            out.push_str(&format!("{name}_bucket{le} {cum}\n"));
                        }
                        let le = bucket_labels(labels, "+Inf");
                        out.push_str(&format!("{name}_bucket{le} {}\n", d.count));
                        out.push_str(&format!("{name}_sum{labels} {}\n", fmt_f64(d.sum)));
                        out.push_str(&format!("{name}_count{labels} {}\n", d.count));
                    }
                }
            }
        }
        out
    }
}

/// Merge an `le` label into an existing rendered label block.
fn bucket_labels(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// Render a float the way Prometheus clients do: integral values without a
/// trailing `.0`, everything else via the shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// `p50`/`p95`/`p99`/`p999` summary of a walk-length histogram, in steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct LengthPercentiles {
    /// Median walk length.
    pub p50: u64,
    /// 95th-percentile walk length.
    pub p95: u64,
    /// 99th-percentile walk length.
    pub p99: u64,
    /// 99.9th-percentile walk length (the tail the per-tenant
    /// step-latency export cares about).
    pub p999: u64,
}

impl LengthPercentiles {
    /// The quantiles this summary reports, with their label names —
    /// the canonical `p50/p95/p99/p999` export set.
    pub const QUANTILES: [(&'static str, f64); 4] =
        [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)];

    /// Build the summary off a log₂-bucketed histogram
    /// ([`log2_histogram_percentile`]). `None` when every bucket is
    /// empty.
    pub fn from_log2_histogram(buckets: &[u64]) -> Option<LengthPercentiles> {
        Some(LengthPercentiles {
            p50: log2_histogram_percentile(buckets, 0.50)?,
            p95: log2_histogram_percentile(buckets, 0.95)?,
            p99: log2_histogram_percentile(buckets, 0.99)?,
            p999: log2_histogram_percentile(buckets, 0.999)?,
        })
    }
}

/// Percentile over a log2-bucketed histogram where bucket `i` counts
/// values in `[2^i, 2^(i+1))` (bucket 0 also holds value 0). Returns the
/// inclusive upper bound of the bucket containing the `q`-quantile rank,
/// or `None` when every bucket is empty.
pub fn log2_histogram_percentile(buckets: &[u64], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return Some((1u64 << (i + 1)) - 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricRegistry::new();
        let c = reg.counter("lt_steps_total", "Total steps", &[]);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Same name + labels returns the same series.
        assert_eq!(reg.counter("lt_steps_total", "Total steps", &[]).get(), 10);
        let g = reg.gauge("lt_util", "Utilization", &[("engine", "compute")]);
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn invalid_metric_name_panics() {
        MetricRegistry::new().counter("Bad-Name", "nope", &[]);
    }

    #[test]
    fn histogram_percentile_empty_is_none() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("lt_lat_ns", "Latency", &[], &[10.0, 100.0]);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_percentile_single_bucket() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("lt_lat_ns", "Latency", &[], &[100.0]);
        h.observe_n(50.0, 4);
        // All mass in [0, 100]: every quantile lands inside that bucket.
        for q in [0.01, 0.5, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!((0.0..=100.0).contains(&p), "q={q} -> {p}");
        }
        assert_eq!(h.percentile(1.0), Some(100.0));
    }

    #[test]
    fn histogram_percentile_interpolates_and_overflows() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("lt_lat_ns", "Latency", &[], &[10.0, 20.0]);
        h.observe_n(5.0, 10); // bucket [0,10]
        h.observe_n(15.0, 10); // bucket (10,20]
        let p50 = h.percentile(0.5).unwrap();
        assert!(
            (p50 - 10.0).abs() < 1e-9,
            "rank 10 is the top of bucket 0: {p50}"
        );
        let p75 = h.percentile(0.75).unwrap();
        assert!((10.0..=20.0).contains(&p75));
        h.observe_n(1e9, 100); // overflow bucket
        assert_eq!(
            h.percentile(0.99),
            Some(20.0),
            "overflow reports last bound"
        );
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricRegistry::new();
        reg.counter("lt_walks_total", "Walks finished", &[]).add(7);
        reg.gauge("lt_overlap_ratio", "Copy/compute overlap", &[])
            .set(0.5);
        let h = reg.histogram(
            "lt_copy_ns",
            "Copy latency",
            &[("engine", "h2d")],
            &[10.0, 100.0],
        );
        h.observe(5.0);
        h.observe(50.0);
        h.observe(500.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP lt_walks_total Walks finished\n"));
        assert!(text.contains("# TYPE lt_walks_total counter\n"));
        assert!(text.contains("lt_walks_total 7\n"));
        assert!(text.contains("lt_overlap_ratio 0.5\n"));
        assert!(text.contains("lt_copy_ns_bucket{engine=\"h2d\",le=\"10\"} 1\n"));
        assert!(text.contains("lt_copy_ns_bucket{engine=\"h2d\",le=\"100\"} 2\n"));
        assert!(text.contains("lt_copy_ns_bucket{engine=\"h2d\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lt_copy_ns_sum{engine=\"h2d\"} 555\n"));
        assert!(text.contains("lt_copy_ns_count{engine=\"h2d\"} 3\n"));
        // Every sample line matches the exposition grammar the CI job checks.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value) = line.rsplit_once(' ').unwrap();
            let name_end = name_part.find('{').unwrap_or(name_part.len());
            assert!(super::valid_name(&name_part[..name_end]), "line {line:?}");
            assert!(value.parse::<f64>().is_ok(), "line {line:?}");
        }
    }

    #[test]
    fn log2_percentiles_edge_cases() {
        assert_eq!(log2_histogram_percentile(&[], 0.5), None);
        assert_eq!(log2_histogram_percentile(&[0, 0, 0], 0.99), None);
        // Single occupied bucket: every quantile reports that bucket.
        let single = [0, 0, 5, 0];
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(log2_histogram_percentile(&single, q), Some(7));
        }
        // Skewed mass: 90 in bucket 0 ([0,2)), 10 in bucket 4 ([16,32)).
        let skew = [90, 0, 0, 0, 10];
        assert_eq!(log2_histogram_percentile(&skew, 0.5), Some(1));
        assert_eq!(log2_histogram_percentile(&skew, 0.95), Some(31));
        assert_eq!(log2_histogram_percentile(&skew, 0.99), Some(31));
        assert_eq!(log2_histogram_percentile(&skew, 0.999), Some(31));
    }

    #[test]
    fn p999_separates_the_extreme_tail() {
        // 999 observations in bucket 1 ([2,4)), one in bucket 9
        // ([512,1024)): p99 stays in the body, p999 lands on the outlier.
        let mut buckets = vec![0u64; 10];
        buckets[1] = 999;
        buckets[9] = 1;
        let p = LengthPercentiles::from_log2_histogram(&buckets).unwrap();
        assert_eq!(p.p50, 3);
        assert_eq!(p.p99, 3);
        assert_eq!(p.p999, 3, "rank ceil(0.999*1000)=999 is still in the body");
        buckets[9] = 2;
        let p = LengthPercentiles::from_log2_histogram(&buckets).unwrap();
        assert_eq!(p.p999, 1023, "rank 1000 of 1001 reaches the outlier bucket");
        assert_eq!(p.p99, 3);
        assert_eq!(LengthPercentiles::from_log2_histogram(&[0, 0]), None);
    }
}
