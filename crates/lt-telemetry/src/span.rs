//! Per-job phase spans and the bounded flight recorder.
//!
//! Every job served by the multi-tenant scheduler gets a [`JobTrace`]: a
//! deterministic trace id plus a causally-ordered sequence of
//! [`SpanRecord`] phase transitions (submitted → queued → admitted →
//! running → blocked → resumed → done/evicted). Each record carries
//! *three* clocks:
//!
//! - `step_clock` — the job's own logical clock (cumulative steps
//!   executed for the job at the transition). Schedule-invariant: the
//!   serving layer's determinism contract makes a job's step totals
//!   independent of what other tenants run.
//! - `sim_ns` — the engine's simulated clock at the transition. From the
//!   job's perspective this is a wall clock: other tenants advance it, so
//!   it is *masked* in the canonical form alongside `host_ns`.
//! - `host_ns` — host wall time, for real-world latency breakdowns.
//!
//! The canonical form ([`JobTrace::canonical_jsonl`]) keeps
//! `seq`/`phase`/`step_clock`/`detail` only; the serving proptests assert
//! it is bit-identical for a job run multiplexed vs alone.
//!
//! The trace doubles as the **flight recorder**: a bounded ring of the
//! most recent spans (older records drop, counted in `dropped`), dumped
//! as JSONL ([`JobTrace::flight_record_jsonl`]) when a job faults, is
//! evicted, or parks on budget exhaustion — `lightwalk inspect` renders
//! the dump as a latency/traffic breakdown table.

use serde_json::json;
use std::collections::VecDeque;

/// A job lifecycle phase (the span taxonomy of DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted by the scheduler.
    Submitted,
    /// Waiting for first admission.
    Queued,
    /// First walkers handed to the engine.
    Admitted,
    /// Executing (or eligible to execute) inside the engine.
    Running,
    /// Parked: budget exhaustion, explicit suspend, or engine fault.
    Blocked,
    /// Un-parked after a block.
    Resumed,
    /// Every walk retired; the result is final.
    Done,
    /// Cancelled or expelled; partial results remain.
    Evicted,
}

impl JobPhase {
    /// Stable lowercase name used in events, JSONL, and Chrome tracks.
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Submitted => "submitted",
            JobPhase::Queued => "queued",
            JobPhase::Admitted => "admitted",
            JobPhase::Running => "running",
            JobPhase::Blocked => "blocked",
            JobPhase::Resumed => "resumed",
            JobPhase::Done => "done",
            JobPhase::Evicted => "evicted",
        }
    }

    /// Parse the stable name back (for `lightwalk inspect`).
    pub fn parse(s: &str) -> Option<JobPhase> {
        Some(match s {
            "submitted" => JobPhase::Submitted,
            "queued" => JobPhase::Queued,
            "admitted" => JobPhase::Admitted,
            "running" => JobPhase::Running,
            "blocked" => JobPhase::Blocked,
            "resumed" => JobPhase::Resumed,
            "done" => JobPhase::Done,
            "evicted" => JobPhase::Evicted,
            _ => return None,
        })
    }

    /// Terminal phases end the job's Chrome track.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Evicted)
    }
}

/// One phase transition of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Per-job sequence number, assigned at record time (monotonic even
    /// across ring drops).
    pub seq: u64,
    /// The phase entered.
    pub phase: JobPhase,
    /// Cumulative steps executed for the job at this transition
    /// (schedule-invariant logical clock).
    pub step_clock: u64,
    /// Engine simulated clock at the transition (wall-like for the job:
    /// masked in the canonical form).
    pub sim_ns: u64,
    /// Host wall clock at the transition (masked in the canonical form).
    pub host_ns: u64,
    /// Free-form payload: block reason, finished count, etc.
    pub detail: String,
}

/// Per-job span store: identity, a bounded ring of recent spans, and the
/// serializers for the canonical / flight-record forms.
#[derive(Clone, Debug)]
pub struct JobTrace {
    /// Job id (the scheduler's slot index).
    pub job: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Deterministic trace id (a pure function of engine seed and job
    /// tag, so multiplexed and isolated runs agree).
    pub trace_id: u64,
    capacity: usize,
    spans: VecDeque<SpanRecord>,
    dropped: u64,
    next_seq: u64,
}

impl JobTrace {
    /// A fresh trace retaining at most `capacity` recent spans
    /// (minimum 1).
    pub fn new(job: u64, tenant: &str, trace_id: u64, capacity: usize) -> Self {
        JobTrace {
            job,
            tenant: tenant.to_string(),
            trace_id,
            capacity: capacity.max(1),
            spans: VecDeque::new(),
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Record a phase transition. Oldest spans fall out of the ring once
    /// `capacity` is exceeded; `seq` keeps counting so drops are visible.
    pub fn record(
        &mut self,
        phase: JobPhase,
        step_clock: u64,
        sim_ns: u64,
        host_ns: u64,
        detail: impl Into<String>,
    ) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(SpanRecord {
            seq: self.next_seq,
            phase,
            step_clock,
            sim_ns,
            host_ns,
            detail: detail.into(),
        });
        self.next_seq += 1;
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// The most recent span.
    pub fn last(&self) -> Option<&SpanRecord> {
        self.spans.back()
    }

    /// Spans dropped from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total transitions recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The canonical, fully deterministic serialization: both wall-like
    /// clocks (`host_ns` *and* the engine `sim_ns`) are masked, leaving
    /// `seq`/`phase`/`step_clock`/`detail`. Bit-identical for a job run
    /// multiplexed with other tenants vs alone (given equal budgets) —
    /// the telemetry extension of the serving determinism contract.
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(
                &json!({
                    "seq": s.seq,
                    "phase": s.phase.as_str(),
                    "step_clock": s.step_clock,
                    "detail": s.detail,
                })
                .to_string(),
            );
            out.push('\n');
        }
        out
    }

    /// The flight-record dump: one `meta` line, one `span` line per
    /// retained record (all clocks included), and one `traffic` line per
    /// attributed `(partition, direction, bytes)` row for this job.
    pub fn flight_record_jsonl(&self, reason: &str, traffic: &[(u32, &str, u64)]) -> String {
        let mut out = String::new();
        out.push_str(
            &json!({
                "kind": "meta",
                "job": self.job,
                "tenant": self.tenant,
                "trace_id": format!("{:016x}", self.trace_id),
                "reason": reason,
                "spans": self.spans.len(),
                "dropped": self.dropped,
            })
            .to_string(),
        );
        out.push('\n');
        for s in &self.spans {
            out.push_str(
                &json!({
                    "kind": "span",
                    "seq": s.seq,
                    "phase": s.phase.as_str(),
                    "step_clock": s.step_clock,
                    "sim_ns": s.sim_ns,
                    "host_ns": s.host_ns,
                    "detail": s.detail,
                })
                .to_string(),
            );
            out.push('\n');
        }
        for &(partition, direction, bytes) in traffic {
            out.push_str(
                &json!({
                    "kind": "traffic",
                    "partition": partition,
                    "direction": direction,
                    "bytes": bytes,
                })
                .to_string(),
            );
            out.push('\n');
        }
        out
    }
}

/// The deterministic trace-id derivation: splitmix64 over the engine
/// seed and the job tag. A pure function of `(seed, tag)`, so the same
/// submission order yields the same ids in every run, multiplexed or
/// isolated.
pub fn derive_trace_id(engine_seed: u64, tag: u32) -> u64 {
    let mut z = engine_seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add((tag as u64).wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_keeps_sequence() {
        let mut t = JobTrace::new(3, "acme", 0xabcd, 2);
        t.record(JobPhase::Submitted, 0, 10, 99, "");
        t.record(JobPhase::Queued, 0, 10, 100, "");
        t.record(JobPhase::Running, 5, 20, 120, "");
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.recorded(), 3);
        let seqs: Vec<u64> = t.spans().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 2], "oldest record fell out, seq continues");
        assert_eq!(t.last().unwrap().phase, JobPhase::Running);
    }

    #[test]
    fn canonical_form_masks_both_wall_clocks() {
        let mut a = JobTrace::new(0, "t", 1, 16);
        let mut b = JobTrace::new(0, "t", 1, 16);
        // Same logical history, wildly different sim/host clocks.
        a.record(JobPhase::Submitted, 0, 100, 5_000, "");
        b.record(JobPhase::Submitted, 0, 777_777, 9_999_999, "");
        a.record(JobPhase::Done, 42, 200, 6_000, "finished=7");
        b.record(JobPhase::Done, 42, 888_888, 10_000_000, "finished=7");
        assert_eq!(a.canonical_jsonl(), b.canonical_jsonl());
        assert!(a.canonical_jsonl().contains("\"phase\":\"done\""));
        assert!(!a.canonical_jsonl().contains("sim_ns"));
        assert!(!a.canonical_jsonl().contains("host_ns"));
    }

    #[test]
    fn flight_record_round_trips_as_jsonl() {
        let mut t = JobTrace::new(7, "acme", 0xdead, 8);
        t.record(JobPhase::Submitted, 0, 1, 2, "");
        t.record(
            JobPhase::Blocked,
            30,
            500,
            700,
            "tenant acme budget exhausted",
        );
        let dump = t.flight_record_jsonl("budget", &[(0, "h2d", 4096), (2, "d2h", 128)]);
        let lines: Vec<serde_json::Value> = dump
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0]["kind"], "meta");
        assert_eq!(lines[0]["job"].as_u64(), Some(7));
        assert_eq!(lines[0]["reason"], "budget");
        assert_eq!(lines[1]["kind"], "span");
        assert_eq!(lines[2]["phase"], "blocked");
        assert_eq!(lines[2]["sim_ns"].as_u64(), Some(500));
        assert_eq!(lines[3]["kind"], "traffic");
        assert_eq!(lines[3]["bytes"].as_u64(), Some(4096));
        assert_eq!(lines[4]["direction"], "d2h");
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(derive_trace_id(42, 0), derive_trace_id(42, 0));
        assert_ne!(derive_trace_id(42, 0), derive_trace_id(42, 1));
        assert_ne!(derive_trace_id(42, 0), derive_trace_id(43, 0));
    }

    #[test]
    fn phase_names_round_trip() {
        for p in [
            JobPhase::Submitted,
            JobPhase::Queued,
            JobPhase::Admitted,
            JobPhase::Running,
            JobPhase::Blocked,
            JobPhase::Resumed,
            JobPhase::Done,
            JobPhase::Evicted,
        ] {
            assert_eq!(JobPhase::parse(p.as_str()), Some(p));
        }
        assert_eq!(JobPhase::parse("nope"), None);
        assert!(JobPhase::Done.is_terminal());
        assert!(!JobPhase::Running.is_terminal());
    }
}
