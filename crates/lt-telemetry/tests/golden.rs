//! Golden-file tests pinning the exporter byte formats, plus property
//! tests over the event serialization.

use lt_telemetry::event::deterministic_jsonl;
use lt_telemetry::{EventBus, Level, MetricRegistry};
use proptest::prelude::*;

/// The Prometheus text output is byte-stable: sorted families, sorted
/// series, `# HELP`/`# TYPE` headers, cumulative histogram buckets.
#[test]
fn prometheus_text_matches_golden_file() {
    let reg = MetricRegistry::new();
    reg.counter("lt_walks_total", "Walks finished", &[]).add(42);
    reg.counter("lt_faults_total", "Injected faults", &[("kind", "crash")])
        .set(2);
    reg.counter(
        "lt_faults_total",
        "Injected faults",
        &[("kind", "straggler")],
    )
    .set(3);
    reg.gauge(
        "lt_overlap_ratio",
        "Fraction of copy time hidden behind compute",
        &[],
    )
    .set(0.75);
    let h = reg.histogram(
        "lt_copy_ns",
        "Copy op latency",
        &[("engine", "h2d")],
        &[1000.0, 10000.0],
    );
    h.observe(500.0);
    h.observe(5000.0);
    h.observe(50000.0);

    let golden = include_str!("golden/metrics.prom");
    assert_eq!(reg.render_prometheus(), golden);
}

/// The deterministic JSONL event schema is byte-stable: sorted keys,
/// compact separators, no `host_ns`.
#[test]
fn jsonl_event_schema_matches_golden_file() {
    let bus = EventBus::new(Level::Debug);
    let ring = bus.ring(64).unwrap();
    bus.emit(
        Level::Debug,
        0,
        "gpusim",
        "op",
        vec![
            ("category", "WalkLoad".into()),
            ("engine", 0u64.into()),
            ("start_ns", 0u64.into()),
            ("end_ns", 1000u64.into()),
            ("stream", 0u64.into()),
        ],
    );
    bus.emit(
        Level::Warn,
        1500,
        "gpusim",
        "fault",
        vec![
            ("kind", "straggler".into()),
            ("op_index", 1u64.into()),
            ("engine", 2u64.into()),
        ],
    );
    bus.emit(
        Level::Info,
        2000,
        "engine",
        "checkpoint",
        vec![("iteration", 3u64.into()), ("walkers", 128u64.into())],
    );

    let golden = include_str!("golden/events.jsonl");
    assert_eq!(deterministic_jsonl(&ring.snapshot()), golden);
}

/// Every metric sample line matches the grammar the CI job enforces:
/// `^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$`.
#[test]
fn prometheus_sample_lines_match_exposition_grammar() {
    let reg = MetricRegistry::new();
    reg.counter("lt_a_total", "a", &[]).add(1);
    reg.gauge("lt_b", "b", &[("x", "y")]).set(-1.25e-3);
    reg.histogram("lt_c_ns", "c", &[], &[0.5, 2.0]).observe(1.0);
    for line in reg.render_prometheus().lines() {
        if line.starts_with('#') {
            continue;
        }
        let (head, value) = line.rsplit_once(' ').expect("name value split");
        let name: String = head.chars().take_while(|c| *c != '{').collect();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "bad metric name in {line:?}"
        );
        if let Some(rest) = head.strip_prefix(&name) {
            if !rest.is_empty() {
                assert!(rest.starts_with('{') && rest.ends_with('}'), "{line:?}");
            }
        }
        assert!(
            !value.is_empty()
                && value
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".eE+-".contains(c)),
            "bad value in {line:?}"
        );
        assert!(value.parse::<f64>().is_ok(), "{line:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Masked serialization never leaks the host clock: two events that
    /// differ only in `host_ns` produce identical deterministic bytes,
    /// and those bytes parse back as JSON with the expected fields.
    fn masked_jsonl_is_host_independent(
        seq in 0u64..1_000_000,
        sim_ns in 0u64..u64::MAX / 2,
        host_a in 0u64..u64::MAX / 2,
        host_b in 0u64..u64::MAX / 2,
        val in 0u64..u64::MAX,
    ) {
        let make = |host_ns| lt_telemetry::Event {
            seq,
            sim_ns,
            host_ns,
            level: Level::Info,
            scope: "prop",
            name: "ev",
            fields: vec![("v", val.into())],
        };
        let a = make(host_a).to_jsonl(false);
        let b = make(host_b).to_jsonl(false);
        prop_assert_eq!(&a, &b);
        let parsed: serde_json::Value = serde_json::from_str(&a).unwrap();
        prop_assert_eq!(parsed["seq"].as_u64(), Some(seq));
        prop_assert_eq!(parsed["sim_ns"].as_u64(), Some(sim_ns));
        prop_assert_eq!(parsed["fields"]["v"].as_u64(), Some(val));
        prop_assert!(parsed["host_ns"].is_null());
    }
}
