//! Tour of every walk algorithm the engine supports, on one graph:
//! uniform sampling, PageRank, PPR, weighted walks (rejection *and* alias
//! sampling — same distribution, different per-step cost profile), and
//! full node2vec with its return/in-out parameters.
//!
//! ```sh
//! cargo run --release --example algorithms_tour
//! ```

use lighttraffic::engine::algorithm::{
    PageRank, Ppr, SecondOrderWalk, UniformSampling, WalkAlgorithm, WeightedWalk,
};
use lighttraffic::engine::alias::AliasWeightedWalk;
use lighttraffic::engine::{EngineConfig, LightTraffic};
use lighttraffic::graph::gen::{rmat, with_random_weights, RmatParams};
use std::sync::Arc;

fn main() {
    let unweighted = Arc::new(
        rmat(RmatParams {
            scale: 12,
            edge_factor: 10,
            seed: 3,
            ..RmatParams::default()
        })
        .csr,
    );
    let weighted = Arc::new(with_random_weights(&unweighted, 7));
    println!(
        "running every algorithm on a {}-vertex graph (2|V| walks each)\n",
        unweighted.num_vertices()
    );
    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>9}",
        "algorithm", "steps", "iterations", "M steps/s", "zc"
    );

    let algorithms: Vec<(Arc<dyn WalkAlgorithm>, bool)> = vec![
        (Arc::new(UniformSampling::new(30)), false),
        (Arc::new(PageRank::new(30, 0.15)), false),
        (Arc::new(Ppr::from_highest_degree(&unweighted, 0.15)), false),
        (Arc::new(WeightedWalk::new(30)), true),
        (Arc::new(AliasWeightedWalk::new(&weighted, 30)), true),
        (Arc::new(SecondOrderWalk::node2vec(30, 0.5, 2.0)), false),
        (Arc::new(SecondOrderWalk::node2vec(30, 2.0, 0.5)), false),
    ];
    for (alg, needs_weights) in algorithms {
        let g = if needs_weights {
            weighted.clone()
        } else {
            unweighted.clone()
        };
        let cfg = EngineConfig::builder(64 << 10, 6)
            .batch_capacity(512)
            .seed(42)
            .build()
            .expect("valid config");
        let mut engine = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("fits");
        let walks = 2 * g.num_vertices();
        let r = engine.run(walks).expect("completes");
        assert_eq!(r.metrics.finished_walks, walks);
        let label = match alg.name() {
            "second-order" => {
                // Distinguish the two node2vec parameterizations.
                "node2vec (2nd-order)".to_string()
            }
            other => other.to_string(),
        };
        println!(
            "{:<28} {:>9} {:>12} {:>12.1} {:>9}",
            label,
            r.metrics.total_steps,
            r.metrics.iterations,
            r.metrics.throughput() / 1e6,
            r.metrics.zero_copy_kernels,
        );
    }

    // Rejection vs alias: identical distributions, checked on first-step
    // frequencies from a hub vertex.
    println!("\nchecking rejection sampling ≡ alias sampling (distribution)...");
    let hub = (0..weighted.num_vertices() as u32)
        .max_by_key(|&v| weighted.degree(v))
        .unwrap();
    let trials = 200_000u64;
    let count_firsts = |alg: &dyn WalkAlgorithm| -> Vec<u64> {
        use lighttraffic::engine::algorithm::{StepContext, StepDecision};
        use lighttraffic::engine::walker::Walker;
        let nbrs = weighted.neighbors(hub);
        let mut counts = vec![0u64; nbrs.len()];
        for id in 0..trials {
            let w = Walker::new(id, hub);
            let ctx = StepContext {
                neighbors: nbrs,
                weights: weighted.neighbor_weights(hub),
                prev_neighbors: None,
                timestamps: None,
                num_vertices: weighted.num_vertices(),
            };
            if let StepDecision::Move(v) = alg.step(&w, ctx, 99) {
                counts[nbrs.iter().position(|&x| x == v).unwrap()] += 1;
            }
        }
        counts
    };
    let rejection = count_firsts(&WeightedWalk::new(5));
    let alias = count_firsts(&AliasWeightedWalk::new(&weighted, 5));
    let max_dev = rejection
        .iter()
        .zip(&alias)
        .map(|(&a, &b)| (a as f64 - b as f64).abs() / trials as f64)
        .fold(0.0f64, f64::max);
    println!(
        "max per-neighbor frequency deviation over {} draws: {:.4} (hub degree {})",
        trials,
        max_dev,
        weighted.degree(hub)
    );
    assert!(max_dev < 0.01, "distributions must agree");
    println!("\nall algorithms completed with matching semantics ✓");
}
