//! DeepWalk corpus generation: record full sampling paths and turn them
//! into skip-gram training pairs — the end-to-end use case the paper's
//! intro motivates (graph embedding samples `|V|` walks per epoch).
//!
//! ```sh
//! cargo run --release --example deepwalk_corpus
//! ```

use lighttraffic::engine::algorithm::UniformSampling;
use lighttraffic::engine::{EngineConfig, LightTraffic};
use lighttraffic::graph::gen::{rmat, RmatParams};
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        rmat(RmatParams {
            scale: 12,
            edge_factor: 10,
            seed: 21,
            ..RmatParams::default()
        })
        .csr,
    );
    let walk_len = 40;
    let window = 5usize;
    println!(
        "sampling a DeepWalk corpus on {} vertices ({} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut engine = LightTraffic::new(
        graph.clone(),
        Arc::new(UniformSampling::new(walk_len)),
        EngineConfig {
            batch_capacity: 512,
            record_paths: true,
            ..EngineConfig::light_traffic(64 << 10, 6)
        },
    )
    .expect("engine fits");

    // One DeepWalk epoch: |V| walks, one from each vertex.
    let walks = graph.num_vertices();
    let result = engine.run(walks).expect("run completes");
    let paths = result.paths.expect("paths recorded");

    println!(
        "epoch sampled: {} paths × {} steps in {:.2} ms simulated ({:.0} M steps/s)",
        paths.len(),
        walk_len,
        result.metrics.makespan_ns as f64 / 1e6,
        result.metrics.throughput() / 1e6,
    );

    // Build skip-gram pairs within the context window, as word2vec-style
    // training would.
    let mut pair_count = 0u64;
    let mut context_size: HashMap<u32, u64> = HashMap::new();
    for path in &paths {
        for (i, &center) in path.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(path.len());
            let contexts = (hi - lo - 1) as u64;
            pair_count += contexts;
            *context_size.entry(center).or_default() += contexts;
        }
    }
    println!("skip-gram pairs (window {window}): {pair_count}");

    // Sanity: every vertex that started a walk appears as a center.
    let centers_seen = context_size.len() as u64;
    println!(
        "distinct center vertices: {} of {}",
        centers_seen,
        graph.num_vertices()
    );
    assert!(centers_seen >= graph.num_vertices() * 9 / 10);

    // Hubs should dominate the corpus (walks drift toward high degree).
    let mut by_count: Vec<(u32, u64)> = context_size.into_iter().collect();
    by_count.sort_unstable_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
    println!("\nmost frequent corpus vertices (vertex, degree, pairs):");
    for (v, c) in by_count.iter().take(5) {
        println!("  {:<8} deg {:<6} {}", v, graph.degree(*v), c);
    }
    let avg_deg = graph.num_edges() as f64 / graph.num_vertices() as f64;
    let top_deg = graph.degree(by_count[0].0) as f64;
    assert!(
        top_deg > avg_deg,
        "corpus should over-represent high-degree vertices"
    );
    println!("\ncorpus statistics look healthy ✓");
}
