//! How LightTraffic degrades (gracefully) as GPU memory shrinks — the
//! scalability story of §IV-D.
//!
//! Sweeps the graph-pool size from "whole graph resident" down to a couple
//! of partitions and prints throughput, traffic, and hit rate at each
//! point; then shows the Figure 18 effect: with a *fixed, tiny* pool the
//! throughput is governed by walk density, not graph size.
//!
//! ```sh
//! cargo run --release --example memory_pressure
//! ```

use lighttraffic::engine::algorithm::UniformSampling;
use lighttraffic::engine::{EngineConfig, LightTraffic};
use lighttraffic::graph::gen::{rmat, RmatParams};
use lighttraffic::graph::stats::human_bytes;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        rmat(RmatParams {
            scale: 13,
            edge_factor: 16,
            seed: 9,
            ..RmatParams::default()
        })
        .csr,
    );
    let partition_bytes = 64 << 10;
    let num_partitions =
        lighttraffic::graph::PartitionedGraph::build(graph.clone(), partition_bytes)
            .num_partitions() as usize;
    println!(
        "graph: {} ({} partitions of {})",
        human_bytes(graph.csr_bytes()),
        num_partitions,
        human_bytes(partition_bytes)
    );
    println!(
        "\n{:>10} {:>12} {:>12} {:>10} {:>10}",
        "pool", "steps/s", "H2D", "hit rate", "zc kernels"
    );
    for pool in [num_partitions, num_partitions / 2, num_partitions / 4, 8, 3] {
        let cfg = EngineConfig {
            batch_capacity: 1024,
            ..EngineConfig::light_traffic(partition_bytes, pool.max(1))
        };
        let mut engine = LightTraffic::new(graph.clone(), Arc::new(UniformSampling::new(20)), cfg)
            .expect("engine fits");
        let r = engine.run(graph.num_vertices()).expect("run completes");
        println!(
            "{:>10} {:>12.2e} {:>12} {:>9.1}% {:>10}",
            pool,
            r.metrics.throughput(),
            human_bytes(r.gpu.h2d_bytes()),
            100.0 * r.metrics.graph_pool_hit_rate(),
            r.metrics.zero_copy_kernels,
        );
    }

    // Figure 18's point: with restricted memory, throughput follows walk
    // density D = w*S_w/S_p, independent of graph size.
    println!("\nwalk-density sweep with a fixed 4-partition pool:");
    println!("{:>10} {:>12} {:>14}", "density", "steps/s", "theory");
    let s_w = 16.0; // uniform sampling walk index bytes
    let cost = lighttraffic::gpusim::CostModel::pcie3();
    for walks_per_vertex in [1u64, 2, 8, 32] {
        let walks = walks_per_vertex * graph.num_vertices();
        let cfg = EngineConfig {
            batch_capacity: 1024,
            ..EngineConfig::light_traffic(partition_bytes, 4)
        };
        let mut engine = LightTraffic::new(graph.clone(), Arc::new(UniformSampling::new(10)), cfg)
            .expect("engine fits");
        let r = engine.run(walks).expect("run completes");
        let density = walks as f64 / num_partitions as f64 * s_w / partition_bytes as f64;
        let theory = (cost.pcie_bandwidth / s_w) / (1.0 + 1.0 / density);
        println!(
            "{:>10.4} {:>12.2e} {:>14.2e}",
            density,
            r.metrics.throughput(),
            theory
        );
    }
    println!("\n(throughput rises with walk density and approaches the B/S_w bound)");
}
