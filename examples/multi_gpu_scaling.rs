//! Multi-GPU scale-out (extension): run the same massive workload on 1, 2,
//! 4 and 8 simulated devices and watch the BSP trade-off — exchange tax at
//! k=2, then near-linear scaling as each device adds compute and link
//! capacity.
//!
//! ```sh
//! cargo run --release --example multi_gpu_scaling
//! ```

use lighttraffic::engine::algorithm::{UniformSampling, WalkAlgorithm};
use lighttraffic::gpusim::CostModel;
use lighttraffic::graph::gen::{rmat, RmatParams};
use lighttraffic::multigpu::{run_multi_gpu, MultiGpuConfig};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(
        rmat(RmatParams {
            scale: 13,
            edge_factor: 12,
            seed: 31,
            ..RmatParams::default()
        })
        .csr,
    );
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(40));
    let walks = 8 * graph.num_vertices();
    println!(
        "scaling {} walks of length 40 over simulated devices ({} vertices)\n",
        walks,
        graph.num_vertices()
    );
    println!(
        "{:>5} {:>12} {:>12} {:>11} {:>10} {:>10}",
        "gpus", "time (ms)", "M steps/s", "supersteps", "exchanged", "imbalance"
    );
    let mut last = None;
    for k in [1usize, 2, 4, 8] {
        let r = run_multi_gpu(
            &graph,
            &alg,
            walks,
            &MultiGpuConfig {
                num_gpus: k,
                cost: CostModel::pcie3(),
                seed: 42,
                ..Default::default()
            },
        )
        .expect("shards fit");
        println!(
            "{:>5} {:>12.3} {:>12.1} {:>11} {:>10} {:>10.2}",
            k,
            r.makespan_ns as f64 / 1e6,
            r.throughput() / 1e6,
            r.supersteps,
            r.exchanged_walks,
            r.compute_imbalance()
        );
        if let Some(prev) = last {
            if k > 2 {
                assert!(r.makespan_ns < prev, "k >= 4 must improve on k/2");
            }
        }
        last = Some(r.makespan_ns);
    }
    println!("\n(k=1 pays no exchange; k=2 pays the full tax; beyond that every");
    println!(" device brings its own interconnect links, so BSP time falls)");
}
