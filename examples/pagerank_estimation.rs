//! Monte-Carlo PageRank on the out-of-GPU-memory engine, validated against
//! power iteration.
//!
//! Running `R` random walks with restart from every vertex and counting
//! visits estimates the PageRank vector (Avrachenkov et al., the paper's
//! [2]). This example runs the estimator through LightTraffic and checks
//! rank agreement with an exact power-iteration solver.
//!
//! ```sh
//! cargo run --release --example pagerank_estimation
//! ```

use lighttraffic::engine::algorithm::PageRank;
use lighttraffic::engine::{EngineConfig, LightTraffic};
use lighttraffic::graph::gen::{rmat, RmatParams};
use lighttraffic::graph::Csr;
use std::sync::Arc;

/// Exact PageRank by power iteration (uniform teleport, damping `1 - p`).
fn power_iteration(g: &Csr, restart_p: f64, iters: usize) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = restart_p / n as f64);
        for (v, r) in rank.iter().enumerate() {
            let nbrs = g.neighbors(v as u32);
            if nbrs.is_empty() {
                continue;
            }
            let share = (1.0 - restart_p) * r / nbrs.len() as f64;
            for &u in nbrs {
                next[u as usize] += share;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Spearman-style agreement: fraction of the exact top-`k` found in the
/// estimated top-`k`.
fn topk_overlap(exact: &[f64], est: &[u64], k: usize) -> f64 {
    let top = |scores: Vec<(usize, f64)>| -> Vec<usize> {
        let mut s = scores;
        s.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
        s.into_iter().take(k).map(|(v, _)| v).collect()
    };
    let e = top(exact.iter().copied().enumerate().collect());
    let m = top(est.iter().map(|&c| c as f64).enumerate().collect());
    let eset: std::collections::HashSet<_> = e.into_iter().collect();
    m.iter().filter(|v| eset.contains(v)).count() as f64 / k as f64
}

fn main() {
    let graph = Arc::new(
        rmat(RmatParams {
            scale: 12,
            edge_factor: 10,
            seed: 5,
            ..RmatParams::default()
        })
        .csr,
    );
    let restart_p = 0.15;
    println!(
        "estimating PageRank on {} vertices / {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Walk length 80, 8 walks per vertex for a tighter estimate.
    let mut engine = LightTraffic::new(
        graph.clone(),
        Arc::new(PageRank::new(80, restart_p)),
        EngineConfig {
            batch_capacity: 2048,
            ..EngineConfig::light_traffic(128 << 10, 8)
        },
    )
    .expect("engine fits");
    let walks = 8 * graph.num_vertices();
    let result = engine.run(walks).expect("run completes");
    println!(
        "{walks} walks, {} steps, {:.2} ms simulated, {:.1} M steps/s",
        result.metrics.total_steps,
        result.metrics.makespan_ns as f64 / 1e6,
        result.metrics.throughput() / 1e6,
    );

    let est = result.visit_counts.expect("PageRank tracks visits");
    let exact = power_iteration(&graph, restart_p, 50);

    for k in [10, 50, 100] {
        let overlap = topk_overlap(&exact, &est, k);
        println!(
            "top-{k:<4} overlap with power iteration: {:.0}%",
            overlap * 100.0
        );
        assert!(
            overlap >= 0.5,
            "Monte-Carlo estimate should recover most of the top-{k}"
        );
    }
    println!("\nMonte-Carlo estimate tracks the exact ranking ✓");
}
