//! Pixie-style recommendation with Personalized PageRank.
//!
//! The paper's intro motivates random walks with recommender systems
//! (Pinterest's Pixie, Alibaba's commodity embeddings). This example runs a
//! massive PPR workload from a seed "user" vertex on the out-of-GPU-memory
//! engine and ranks the most visited vertices as recommendations, then
//! sanity-checks the ranking against a CPU reference engine.
//!
//! ```sh
//! cargo run --release --example ppr_recommendation
//! ```

use lighttraffic::baselines::cpu;
use lighttraffic::engine::algorithm::{Ppr, WalkAlgorithm};
use lighttraffic::engine::{EngineConfig, LightTraffic};
use lighttraffic::graph::gen::{rmat, RmatParams};
use std::sync::Arc;

fn top_k(visits: &[u64], k: usize, exclude: u32) -> Vec<(u32, u64)> {
    let mut ranked: Vec<(u32, u64)> = visits
        .iter()
        .enumerate()
        .filter(|&(v, &c)| c > 0 && v as u32 != exclude)
        .map(|(v, &c)| (v as u32, c))
        .collect();
    ranked.sort_unstable_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
    ranked.truncate(k);
    ranked
}

fn main() {
    let graph = Arc::new(
        rmat(RmatParams {
            scale: 13,
            edge_factor: 12,
            seed: 77,
            ..RmatParams::default()
        })
        .csr,
    );
    // Seed the walks at the highest-degree vertex (the paper's choice).
    let ppr = Ppr::from_highest_degree(&graph, 0.15);
    let seed_vertex = ppr.source;
    println!(
        "recommending for vertex {seed_vertex} (degree {}) on a graph of {} vertices",
        graph.degree(seed_vertex),
        graph.num_vertices()
    );

    let num_walks = 200_000;
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(ppr);
    let mut engine = LightTraffic::new(
        graph.clone(),
        alg.clone(),
        EngineConfig {
            batch_capacity: 2048,
            ..EngineConfig::light_traffic(128 << 10, 8)
        },
    )
    .expect("engine fits");
    let result = engine.run(num_walks).expect("run completes");
    let visits = result.visit_counts.as_ref().expect("PPR tracks visits");

    println!(
        "\n{num_walks} walks, {} steps in {:.2} ms simulated ({:.1} M steps/s)",
        result.metrics.total_steps,
        result.metrics.makespan_ns as f64 / 1e6,
        result.metrics.throughput() / 1e6
    );

    println!("\ntop-10 recommendations (vertex, visit count):");
    let recs = top_k(visits, 10, seed_vertex);
    for (rank, (v, c)) in recs.iter().enumerate() {
        println!("  #{:<2} vertex {:<8} visits {}", rank + 1, v, c);
    }

    // Cross-check: a CPU engine with the same seed must produce the exact
    // same visit vector (identical trajectories by construction).
    let reference = cpu::run_walk_centric(&graph, &alg, num_walks, 42, 2);
    assert_eq!(
        reference.visits.as_ref().unwrap(),
        visits,
        "CPU reference and GPU engine must agree exactly"
    );
    println!(
        "\nCPU reference engine agrees on all {} visit counts ✓",
        visits.len()
    );
}
