//! Quickstart: run DeepWalk-style sampling walks on a graph that does not
//! fit in (simulated) GPU memory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lighttraffic::engine::algorithm::UniformSampling;
use lighttraffic::engine::{EngineConfig, LightTraffic};
use lighttraffic::gpusim::{CostModel, GpuConfig};
use lighttraffic::graph::gen::{rmat, RmatParams};
use std::sync::Arc;

fn main() {
    // 1. A scaled-down social-network-like graph (power-law, undirected).
    let graph = Arc::new(
        rmat(RmatParams {
            scale: 14,
            edge_factor: 16,
            seed: 1,
            ..RmatParams::default()
        })
        .csr,
    );
    println!(
        "graph: {} vertices, {} edges, CSR {}",
        graph.num_vertices(),
        graph.num_edges(),
        lighttraffic::graph::stats::human_bytes(graph.csr_bytes())
    );

    // 2. Configure the engine: 128 KB partitions, a graph pool of only 5
    //    partitions, PCIe 3.0. The graph is several times larger than the
    //    pool, so this is genuinely out-of-GPU-memory.
    let cfg = EngineConfig {
        gpu: GpuConfig {
            memory_bytes: 64 << 20,
            cost: CostModel::pcie3(),
            ..GpuConfig::default()
        },
        ..EngineConfig::light_traffic(128 << 10, 5)
    };
    let walk_len = 80; // the paper's default
    let mut engine =
        LightTraffic::new(graph.clone(), Arc::new(UniformSampling::new(walk_len)), cfg)
            .expect("pools fit in the simulated device");
    println!(
        "partitions: {} of {} each, graph pool holds 5",
        engine.partitions().num_partitions(),
        lighttraffic::graph::stats::human_bytes(engine.partitions().block_bytes()),
    );

    // 3. Run the paper's standard workload: 2|V| walks of length 80.
    let num_walks = 2 * graph.num_vertices();
    let result = engine.run(num_walks).expect("run completes");

    // 4. Inspect what happened.
    let m = &result.metrics;
    println!("\n--- run summary ---");
    println!("walks finished      : {}", m.finished_walks);
    println!("total steps         : {}", m.total_steps);
    println!("scheduler iterations: {}", m.iterations);
    println!("explicit graph loads: {}", m.explicit_graph_copies);
    println!("zero-copy kernels   : {}", m.zero_copy_kernels);
    println!(
        "graph pool hit rate : {:.1}%",
        100.0 * m.graph_pool_hit_rate()
    );
    println!(
        "walk batches        : {} loaded, {} evicted, {} preempted",
        m.walk_batches_loaded, m.walk_batches_evicted, m.preemptive_batches
    );
    println!("simulated time      : {:.3} s", result.seconds());
    println!(
        "throughput          : {:.2} M steps/s",
        m.throughput() / 1e6
    );

    let g = &result.gpu;
    println!("\n--- simulated time breakdown (busy, overlapped) ---");
    println!(
        "graph loading : {:>9.3} ms",
        g.graph_load.busy_ns as f64 / 1e6
    );
    println!(
        "walk loading  : {:>9.3} ms",
        g.walk_load.busy_ns as f64 / 1e6
    );
    println!(
        "walk eviction : {:>9.3} ms",
        g.walk_evict.busy_ns as f64 / 1e6
    );
    println!(
        "zero copy     : {:>9.3} ms",
        g.zero_copy.busy_ns as f64 / 1e6
    );
    println!("computing     : {:>9.3} ms", g.compute.busy_ns as f64 / 1e6);
    println!(
        "H2D traffic   : {}",
        lighttraffic::graph::stats::human_bytes(g.h2d_bytes())
    );
    println!(
        "D2H traffic   : {}",
        lighttraffic::graph::stats::human_bytes(g.d2h_bytes())
    );
}
