//! `lightwalk` — command-line front end to the LightTraffic reproduction.
//!
//! ```text
//! lightwalk generate --rmat 14x16 --seed 1 --out graph.bin
//! lightwalk generate --dataset UK --shift 3 --out uk.bin
//! lightwalk info graph.bin --partition-kb 64
//! lightwalk run graph.bin --algorithm pagerank --walks 2x --length 80 \
//!     --partition-kb 64 --graph-pool 8 --trace timeline.json
//! lightwalk compare graph.bin --walks 2x --length 40
//! ```

use lighttraffic::baselines::{cpu, ingpu, subway};
use lighttraffic::engine::algorithm::{PageRank, Ppr, UniformSampling, WalkAlgorithm};
use lighttraffic::engine::{EngineConfig, LightTraffic, ZeroCopyPolicy};
use lighttraffic::gpusim::{CostModel, GpuConfig};
use lighttraffic::graph::gen::{self, datasets};
use lighttraffic::graph::stats::{human_bytes, stats};
use lighttraffic::graph::{io, Csr, PartitionedGraph};
use lighttraffic::telemetry::{EventBus, JsonlSink, Level, MetricRegistry};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `lightwalk help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "lightwalk — out-of-GPU-memory random walks (LightTraffic reproduction)

USAGE:
  lightwalk generate (--rmat SCALExEF | --dataset NAME [--shift N]) [--seed N] --out FILE
  lightwalk info FILE [--partition-kb N]
  lightwalk run FILE [options]
  lightwalk serve FILE [options]
  lightwalk inspect DUMP.jsonl
  lightwalk compare FILE [options]

RUN OPTIONS:
  --algorithm NAME    uniform | pagerank | ppr           (default uniform)
  --walks COUNT       absolute count, or `2x` for 2|V|   (default 2x)
  --length N          walk length / cap                  (default 80)
  --restart P         restart/stop probability           (default 0.15)
  --partition-kb N    partition block size in KB         (default CSR/48)
  --graph-pool N      cached graph partitions m_g        (default P/2)
  --batch N           walkers per batch                  (default 1024)
  --pcie GEN          3 | 4 | nvlink                     (default 3)
  --no-preemptive     disable preemptive scheduling
  --no-selective      disable selective scheduling
  --zero-copy MODE    never | always | adaptive          (default adaptive)
  --seed N            RNG seed                           (default 42)
  --trace FILE        write a Chrome trace of the timeline
  --metrics-out FILE  write run metrics in Prometheus text format
  --log-level LEVEL   stream debug|info|warn|error events as JSONL to stderr
  --checkpoint FILE   pause after --pause-after iterations and save state
  --pause-after N     iterations to run before checkpointing (default 100)
  --resume FILE       resume a previously saved checkpoint
  --json              machine-readable output

SERVE OPTIONS (multi-tenant walk service, JSONL over TCP):
  --addr HOST:PORT    listen address                     (default 127.0.0.1:7171)
  --partition-kb N    partition block size in KB         (default CSR/48)
  --graph-pool N      cached graph partitions m_g        (default P/2)
  --batch N           walkers per batch                  (default 1024)
  --seed N            engine RNG seed                    (default 42)
  --max-jobs N        job slots over the server lifetime (default 256)
  --default-budget N  tokens granted per new tenant      (default unlimited)
  --metrics-out FILE  periodically write the live server registry
                      (same registry the `metrics` op exports)
  --flight-dir DIR    dump per-job flight records (JSONL) here on fault,
                      eviction, or budget exhaustion
  --max-seconds N     exit after N seconds (0 = run forever; default 0)

INSPECT:
  Render a flight-record dump (from serve --flight-dir or the TCP
  `inspect` op) as a per-job latency and traffic breakdown table."
    );
}

/// Tiny flag parser: `--key value` pairs plus positionals.
#[derive(Debug)]
struct Flags {
    positionals: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut f = Flags {
            positionals: Vec::new(),
            pairs: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    f.switches.push(name.to_string());
                    i += 1;
                } else {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    f.pairs.push((name.to_string(), v.clone()));
                    i += 2;
                }
            } else {
                f.positionals.push(a.clone());
                i += 1;
            }
        }
        Ok(f)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let out = f.get("out").ok_or("generate needs --out FILE")?;
    let seed: u64 = f.get_parse("seed", 42)?;
    let csr = if let Some(spec) = f.get("rmat") {
        let (scale, ef) = spec
            .split_once(['x', 'X'])
            .ok_or("--rmat wants SCALExEDGEFACTOR, e.g. 14x16")?;
        let scale: u32 = scale.parse().map_err(|_| "bad rmat scale")?;
        let ef: u32 = ef.parse().map_err(|_| "bad rmat edge factor")?;
        gen::rmat(gen::RmatParams {
            scale,
            edge_factor: ef,
            seed,
            ..Default::default()
        })
        .csr
    } else if let Some(name) = f.get("dataset") {
        let shift: u32 = f.get_parse("shift", 4)?;
        let spec = datasets::ALL
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown dataset `{name}` (LJ OR TW FS UK YH CW)"))?;
        spec.generate(shift, seed).csr
    } else {
        return Err("generate needs --rmat or --dataset".into());
    };
    io::write_binary(&csr, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} vertices, {} edges, {}",
        csr.num_vertices(),
        csr.num_edges(),
        human_bytes(csr.csr_bytes())
    );
    Ok(())
}

fn load_graph(f: &Flags) -> Result<Arc<Csr>, String> {
    let path = f
        .positionals
        .first()
        .ok_or("missing graph file (generate one with `lightwalk generate`)")?;
    Ok(Arc::new(io::read_binary(path).map_err(|e| e.to_string())?))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let g = load_graph(&f)?;
    let s = stats(&g);
    println!("vertices     : {}", s.num_vertices);
    println!("edges        : {}", s.num_edges);
    println!("csr size     : {}", human_bytes(s.csr_bytes));
    println!("max degree   : {}", s.max_degree);
    println!("avg degree   : {:.2}", s.avg_degree);
    println!("top-1% share : {:.3}", s.top1pct_edge_share);
    println!("weighted     : {}", g.is_weighted());
    let comp = lighttraffic::graph::components::components(&g);
    println!(
        "components   : {} (largest covers {:.1}%)",
        comp.count,
        100.0 * comp.largest_fraction
    );
    println!("degree histogram:");
    print!(
        "{}",
        lighttraffic::graph::stats::degree_histogram(&g).render()
    );
    let part_kb: u64 = f.get_parse("partition-kb", (s.csr_bytes / 48 / 1024).max(256))?;
    let pg = PartitionedGraph::build(g.clone(), part_kb << 10);
    println!(
        "partitions   : {} of ≤{} each",
        pg.num_partitions(),
        human_bytes(part_kb << 10)
    );
    let over = pg.oversized_partitions();
    if !over.is_empty() {
        println!(
            "oversized    : {} hub partition(s) exceed the block (zero copy required)",
            over.len()
        );
    }
    Ok(())
}

struct RunSetup {
    graph: Arc<Csr>,
    partitions: Arc<PartitionedGraph>,
    alg: Arc<dyn WalkAlgorithm>,
    walks: u64,
    cfg: EngineConfig,
    seed: u64,
}

fn parse_run(f: &Flags) -> Result<RunSetup, String> {
    let graph = load_graph(f)?;
    let seed: u64 = f.get_parse("seed", 42)?;
    let length: u32 = f.get_parse("length", 80)?;
    let restart: f64 = f.get_parse("restart", 0.15)?;
    let alg: Arc<dyn WalkAlgorithm> = match f.get("algorithm").unwrap_or("uniform") {
        "uniform" => Arc::new(UniformSampling::new(length)),
        "pagerank" => Arc::new(PageRank::new(length, restart)),
        "ppr" => Arc::new(Ppr::from_highest_degree(&graph, restart)),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let walks = match f.get("walks").unwrap_or("2x") {
        s if s.ends_with('x') => {
            let mult: u64 = s[..s.len() - 1]
                .parse()
                .map_err(|_| "--walks: bad multiplier")?;
            mult * graph.num_vertices()
        }
        s => s.parse().map_err(|_| "--walks: bad count")?,
    };
    // Floor of 256 KB: partitions much smaller than the per-copy DMA
    // latency×bandwidth product are latency-bound on real hardware too.
    let default_part_kb = (graph.csr_bytes() / 48 / 1024).max(256);
    let part_bytes: u64 = f.get_parse("partition-kb", default_part_kb)? << 10;
    // Build the partition table once; the engine reuses it.
    let partitions = Arc::new(PartitionedGraph::build(graph.clone(), part_bytes));
    let p = partitions.num_partitions() as usize;
    let graph_pool: usize = f.get_parse("graph-pool", (p / 2).max(1))?;
    let batch: usize = f.get_parse("batch", 1024)?;
    let cost = match f.get("pcie").unwrap_or("3") {
        "3" => CostModel::pcie3(),
        "4" => CostModel::pcie4(),
        "nvlink" => CostModel::nvlink(),
        other => return Err(format!("unknown interconnect `{other}`")),
    };
    let zero_copy = match f.get("zero-copy").unwrap_or("adaptive") {
        "never" => ZeroCopyPolicy::Never,
        "always" => ZeroCopyPolicy::Always,
        "adaptive" => ZeroCopyPolicy::adaptive(),
        other => return Err(format!("unknown zero-copy mode `{other}`")),
    };
    let telemetry = match f.get("log-level") {
        None => EventBus::disabled(),
        Some(s) => {
            let level = Level::parse(s)
                .ok_or_else(|| format!("unknown log level `{s}` (debug|info|warn|error)"))?;
            let bus = EventBus::new(level);
            bus.add_sink(Box::new(JsonlSink::new(std::io::stderr(), level, true)));
            bus
        }
    };
    let cfg = EngineConfig {
        batch_capacity: batch,
        seed,
        preemptive: !f.has("no-preemptive"),
        selective: !f.has("no-selective"),
        zero_copy,
        gpu: GpuConfig {
            cost,
            record_ops: f.get("trace").is_some(),
            telemetry,
            ..Default::default()
        },
        ..EngineConfig::light_traffic(part_bytes, graph_pool)
    };
    Ok(RunSetup {
        graph,
        partitions,
        alg,
        walks,
        cfg,
        seed,
    })
}

/// `--metrics-out FILE`: export the run's counters in the Prometheus text
/// exposition format.
fn write_metrics_out(f: &Flags, r: &lighttraffic::engine::RunResult) -> Result<(), String> {
    let Some(path) = f.get("metrics-out") else {
        return Ok(());
    };
    let registry = MetricRegistry::new();
    r.metrics.publish(&registry);
    r.gpu.publish(&registry);
    std::fs::write(path, registry.render_prometheus()).map_err(|e| e.to_string())?;
    eprintln!("[metrics written to {path}]");
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &["no-preemptive", "no-selective", "json"])?;
    let setup = parse_run(&f)?;
    let mut engine =
        LightTraffic::with_partitioned(setup.partitions.clone(), setup.alg.clone(), setup.cfg)
            .map_err(|e| e.to_string())?;
    // Checkpoint workflows: either resume an existing snapshot, or run a
    // bounded number of iterations and save one.
    if let Some(cp_path) = f.get("resume") {
        let cp = lighttraffic::engine::Checkpoint::load(cp_path).map_err(|e| e.to_string())?;
        eprintln!(
            "[resuming {} in-flight walks from {cp_path}]",
            cp.active_walks()
        );
        let r = engine.resume(cp).map_err(|e| e.to_string())?;
        write_metrics_out(&f, &r)?;
        if f.has("json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
            );
        } else {
            println!(
                "resumed run finished: {} walks, {} steps, {:.2} M steps/s",
                r.metrics.finished_walks,
                r.metrics.total_steps,
                r.metrics.throughput() / 1e6
            );
        }
        return Ok(());
    }
    if let Some(cp_path) = f.get("checkpoint") {
        let pause_after: u64 = f.get_parse("pause-after", 100)?;
        engine.inject(setup.alg.initial_walkers(&setup.graph, setup.walks));
        return match engine.run_at_most(pause_after).map_err(|e| e.to_string())? {
            lighttraffic::engine::RunStatus::Completed(r) => {
                write_metrics_out(&f, &r)?;
                if f.has("json") {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
                    );
                } else {
                    println!(
                        "run completed before the checkpoint budget: {} walks, {} steps",
                        r.metrics.finished_walks, r.metrics.total_steps
                    );
                }
                Ok(())
            }
            lighttraffic::engine::RunStatus::Paused => {
                let cp = engine.checkpoint();
                cp.save(cp_path).map_err(|e| e.to_string())?;
                let msg = serde_json::json!({
                    "paused_after_iterations": pause_after,
                    "walks_in_flight": cp.active_walks(),
                    "checkpoint": cp_path,
                });
                if f.has("json") {
                    println!("{msg}");
                } else {
                    println!(
                        "paused after {pause_after} iterations; {} walks in flight saved to {cp_path}",
                        cp.active_walks()
                    );
                }
                Ok(())
            }
            other => Err(format!("unexpected run status: {other:?}")),
        };
    }
    let r = engine.run(setup.walks).map_err(|e| e.to_string())?;
    if let Some(path) = f.get("trace") {
        lighttraffic::gpusim::trace::write_chrome_trace(
            &engine.gpu().op_log(),
            &engine.gpu().fault_log(),
            path,
        )
        .map_err(|e| e.to_string())?;
        eprintln!("[trace written to {path}]");
    }
    write_metrics_out(&f, &r)?;
    if f.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let m = &r.metrics;
    println!("algorithm            : {}", setup.alg.name());
    println!(
        "walks                : {} finished of {}",
        m.finished_walks, setup.walks
    );
    println!("steps                : {}", m.total_steps);
    println!("iterations           : {}", m.iterations);
    println!("explicit graph loads : {}", m.explicit_graph_copies);
    println!("zero-copy kernels    : {}", m.zero_copy_kernels);
    println!(
        "graph pool hit rate  : {:.1}%",
        100.0 * m.graph_pool_hit_rate()
    );
    println!(
        "walk batches         : {} loaded / {} evicted / {} preempted",
        m.walk_batches_loaded, m.walk_batches_evicted, m.preemptive_batches
    );
    println!("H2D traffic          : {}", human_bytes(r.gpu.h2d_bytes()));
    println!("D2H traffic          : {}", human_bytes(r.gpu.d2h_bytes()));
    println!(
        "simulated time       : {:.3} ms",
        m.makespan_ns as f64 / 1e6
    );
    println!(
        "throughput           : {:.2} M steps/s",
        m.throughput() / 1e6
    );
    Ok(())
}

/// `lightwalk serve`: expose the graph as a multi-tenant walk service
/// (see `lt-server`). `--metrics-out` mirrors the *live* server registry
/// to a file on a short cadence — the very registry the TCP `metrics` op
/// renders, so there is exactly one source of metrics truth.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let graph = load_graph(&f)?;
    let seed: u64 = f.get_parse("seed", 42)?;
    let default_part_kb = (graph.csr_bytes() / 48 / 1024).max(256);
    let part_bytes: u64 = f.get_parse("partition-kb", default_part_kb)? << 10;
    let p = PartitionedGraph::build(graph.clone(), part_bytes).num_partitions() as usize;
    let graph_pool: usize = f.get_parse("graph-pool", (p / 2).max(1))?;
    let batch: usize = f.get_parse("batch", 1024)?;
    let engine = EngineConfig {
        batch_capacity: batch,
        seed,
        ..EngineConfig::light_traffic(part_bytes, graph_pool)
    };
    let mut cfg = lighttraffic::server::ServerConfig::new(engine);
    cfg.max_jobs = f.get_parse("max-jobs", 256)?;
    cfg.default_budget = f.get_parse("default-budget", u64::MAX)?;
    cfg.flight_recorder_dir = f.get("flight-dir").map(std::path::PathBuf::from);
    let server = lighttraffic::server::Server::start(graph, cfg).map_err(|e| e.to_string())?;
    let handle = server.handle();
    let front = lighttraffic::server::TcpFrontend::bind(
        handle.clone(),
        f.get("addr").unwrap_or("127.0.0.1:7171"),
    )
    .map_err(|e| e.to_string())?;
    eprintln!("[serving walks on {}]", front.local_addr());
    let max_seconds: u64 = f.get_parse("max-seconds", 0)?;
    let started = std::time::Instant::now();
    let registry = handle.registry();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(500));
        if let Some(path) = f.get("metrics-out") {
            std::fs::write(path, registry.render_prometheus()).map_err(|e| e.to_string())?;
        }
        if max_seconds > 0 && started.elapsed().as_secs() >= max_seconds {
            break;
        }
    }
    front.shutdown();
    server.shutdown();
    Ok(())
}

/// One parsed flight record: the meta line plus its span/traffic lines.
struct FlightDump {
    meta: serde_json::Value,
    spans: Vec<serde_json::Value>,
    traffic: Vec<serde_json::Value>,
}

/// Parse a flight-record JSONL file. A file may hold several
/// concatenated dumps; each starts at a `"kind":"meta"` line.
fn parse_flight_dumps(text: &str) -> Result<Vec<FlightDump>, String> {
    let mut dumps: Vec<FlightDump> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: bad json: {e:?}", n + 1))?;
        match v.get("kind").and_then(|k| k.as_str()) {
            Some("meta") => dumps.push(FlightDump {
                meta: v,
                spans: Vec::new(),
                traffic: Vec::new(),
            }),
            Some(kind) => {
                let d = dumps
                    .last_mut()
                    .ok_or_else(|| format!("line {}: record before any meta line", n + 1))?;
                match kind {
                    "span" => d.spans.push(v),
                    "traffic" => d.traffic.push(v),
                    other => return Err(format!("line {}: unknown kind {other:?}", n + 1)),
                }
            }
            None => return Err(format!("line {}: record without a kind field", n + 1)),
        }
    }
    Ok(dumps)
}

/// `lightwalk inspect DUMP.jsonl`: per-job latency and traffic breakdown
/// of a flight record written by `serve --flight-dir` (or the TCP
/// `inspect` op).
fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &[])?;
    let path = f
        .positionals
        .first()
        .ok_or("inspect needs a flight-record dump (write one with `serve --flight-dir`)")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let dumps = parse_flight_dumps(&text)?;
    if dumps.is_empty() {
        return Err(format!("{path}: no flight records"));
    }
    let s = |v: &serde_json::Value, k: &str| {
        v.get(k).and_then(|x| x.as_str()).unwrap_or("?").to_string()
    };
    let u = |v: &serde_json::Value, k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    for d in &dumps {
        println!(
            "job {} · tenant {:?} · trace {} · reason {} · {} spans retained ({} dropped)",
            u(&d.meta, "job"),
            s(&d.meta, "tenant"),
            s(&d.meta, "trace_id"),
            s(&d.meta, "reason"),
            d.spans.len(),
            u(&d.meta, "dropped"),
        );
        if d.spans.is_empty() {
            println!("  (no spans retained)\n");
            continue;
        }
        // Timeline: clocks shown relative to the first retained span.
        let sim0 = u(&d.spans[0], "sim_ns");
        let host0 = u(&d.spans[0], "host_ns");
        println!(
            "\n  {:>4}  {:<10} {:>10} {:>11} {:>11}  detail",
            "seq", "phase", "steps", "sim(ms)", "host(ms)"
        );
        for sp in &d.spans {
            println!(
                "  {:>4}  {:<10} {:>10} {:>11.3} {:>11.3}  {}",
                u(sp, "seq"),
                s(sp, "phase"),
                u(sp, "step_clock"),
                u(sp, "sim_ns").saturating_sub(sim0) as f64 / 1e6,
                u(sp, "host_ns").saturating_sub(host0) as f64 / 1e6,
                s(sp, "detail"),
            );
        }
        // Latency breakdown: the interval between two transitions is
        // attributed to the phase being left.
        let mut by_phase: std::collections::BTreeMap<String, (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for w in d.spans.windows(2) {
            let e = by_phase.entry(s(&w[0], "phase")).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += u(&w[1], "sim_ns").saturating_sub(u(&w[0], "sim_ns"));
            e.2 += u(&w[1], "host_ns").saturating_sub(u(&w[0], "host_ns"));
        }
        if !by_phase.is_empty() {
            println!(
                "\n  time in phase:        {:>8} {:>11} {:>11}",
                "spans", "sim(ms)", "host(ms)"
            );
            for (phase, (count, sim, host)) in &by_phase {
                println!(
                    "    {:<18}  {:>8} {:>11.3} {:>11.3}",
                    phase,
                    count,
                    *sim as f64 / 1e6,
                    *host as f64 / 1e6
                );
            }
        }
        // Traffic attributed to the job.
        let (mut h2d, mut d2h) = (0u64, 0u64);
        if !d.traffic.is_empty() {
            println!(
                "\n  traffic:    {:>9} {:>9} {:>12}",
                "partition", "dir", "bytes"
            );
            for t in &d.traffic {
                let bytes = u(t, "bytes");
                match s(t, "direction").as_str() {
                    "h2d" => h2d += bytes,
                    _ => d2h += bytes,
                }
                println!(
                    "              {:>9} {:>9} {:>12}",
                    u(t, "partition"),
                    s(t, "direction"),
                    human_bytes(bytes)
                );
            }
            let steps = d.spans.last().map(|sp| u(sp, "step_clock")).unwrap_or(0);
            let per_step = if steps > 0 {
                format!(", {:.1} B/step", (h2d + d2h) as f64 / steps as f64)
            } else {
                String::new()
            };
            println!(
                "    total     h2d {} · d2h {}{per_step}",
                human_bytes(h2d),
                human_bytes(d2h)
            );
        } else {
            println!("\n  traffic: none attributed");
        }
        println!();
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &["no-preemptive", "no-selective", "json"])?;
    let setup = parse_run(&f)?;
    println!(
        "comparing systems on {} walks of `{}`:\n",
        setup.walks,
        setup.alg.name()
    );
    let mut engine = LightTraffic::with_partitioned(
        setup.partitions.clone(),
        setup.alg.clone(),
        setup.cfg.clone(),
    )
    .map_err(|e| e.to_string())?;
    let lt = engine.run(setup.walks).map_err(|e| e.to_string())?;
    println!(
        "LightTraffic       : {:>10.2} M steps/s  ({:.3} ms simulated)",
        lt.metrics.throughput() / 1e6,
        lt.metrics.makespan_ns as f64 / 1e6
    );
    let sub = subway::run_subway(
        &setup.graph,
        &setup.alg,
        setup.walks,
        &subway::SubwayConfig {
            seed: setup.seed,
            gpu: setup.cfg.gpu.clone(),
            ..Default::default()
        },
    );
    let ratio = sub.metrics.makespan_ns as f64 / lt.metrics.makespan_ns as f64;
    let verdict = if ratio >= 1.0 {
        format!("{ratio:.1}x slower than LightTraffic")
    } else {
        format!("{:.1}x faster than LightTraffic", 1.0 / ratio)
    };
    println!(
        "Subway-like        : {:>10.2} M steps/s  ({:.3} ms simulated, {verdict})",
        sub.throughput() / 1e6,
        sub.metrics.makespan_ns as f64 / 1e6,
    );
    match ingpu::run_in_gpu_memory(
        &setup.graph,
        &setup.alg,
        setup.walks,
        setup.cfg.gpu.clone(),
        setup.seed,
    ) {
        Ok(ig) => println!(
            "in-GPU-memory      : {:>10.2} M steps/s  ({:.3} ms simulated)",
            ig.throughput() / 1e6,
            ig.metrics.makespan_ns as f64 / 1e6
        ),
        Err(e) => println!("in-GPU-memory      : unavailable ({e})"),
    }
    let cpu_r = cpu::run_walk_centric(&setup.graph, &setup.alg, setup.walks, setup.seed, 2);
    println!(
        "CPU walk-centric   : {:>10.2} M steps/s  (measured on this host)",
        cpu_r.throughput() / 1e6
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Flags;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_switches_and_positionals() {
        let f = Flags::parse(
            &args(&["graph.bin", "--walks", "2x", "--json", "--seed", "7"]),
            &["json"],
        )
        .unwrap();
        assert_eq!(f.positionals, vec!["graph.bin"]);
        assert_eq!(f.get("walks"), Some("2x"));
        assert!(f.has("json"));
        assert_eq!(f.get_parse::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(f.get_parse::<u64>("missing", 99).unwrap(), 99);
    }

    #[test]
    fn flags_reject_missing_value() {
        let err = Flags::parse(&args(&["--walks"]), &[]).unwrap_err();
        assert!(err.contains("--walks"));
    }

    #[test]
    fn flags_reject_unparseable_value() {
        let f = Flags::parse(&args(&["--seed", "xyz"]), &[]).unwrap();
        assert!(f.get_parse::<u64>("seed", 0).is_err());
    }

    #[test]
    fn later_flags_override_earlier() {
        let f = Flags::parse(&args(&["--seed", "1", "--seed", "2"]), &[]).unwrap();
        assert_eq!(f.get("seed"), Some("2"));
    }
}
