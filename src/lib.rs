//! # LightTraffic (Rust reproduction)
//!
//! A faithful reimplementation of *"LightTraffic: On Optimizing CPU-GPU
//! Data Traffic for Efficient Large-scale Random Walks"* (ICDE 2023) on a
//! simulated GPU substrate, so the system runs — and its experiments
//! regenerate — on any machine without CUDA.
//!
//! The facade re-exports the workspace crates:
//!
//! - [`graph`] ([`lt_graph`]): CSR storage, generators, preprocessing,
//!   range partitioning.
//! - [`gpusim`] ([`lt_gpusim`]): the discrete-event GPU + PCIe simulator
//!   (device pools, streams, full-duplex copy engines, zero copy, cost
//!   model).
//! - [`engine`] ([`lt_engine`]): the LightTraffic engine — out-of-memory
//!   walk index, two-level reshuffle caching, pipelined
//!   preemptive/selective/adaptive scheduling.
//! - [`baselines`] ([`lt_baselines`]): Subway-like, multi-round,
//!   in-GPU-memory, and CPU comparison engines.
//! - [`multigpu`] ([`lt_multigpu`]): BSP scale-out over multiple simulated
//!   devices with inter-GPU walk exchange (extension).
//! - [`server`] ([`lt_server`]): walk-as-a-service — the multi-tenant
//!   job scheduler with budgeted admission control and the TCP/JSONL
//!   front end.
//! - [`telemetry`] ([`lt_telemetry`]): structured events, the metric
//!   registry with Prometheus export, and the pipeline-bubble analyzer.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the architecture and
//! hardware-substitution rationale, and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.
//!
//! ```
//! use std::sync::Arc;
//! use lighttraffic::engine::{EngineConfig, LightTraffic};
//! use lighttraffic::engine::algorithm::UniformSampling;
//! use lighttraffic::graph::gen::{rmat, RmatParams};
//!
//! let g = Arc::new(rmat(RmatParams { scale: 10, edge_factor: 8, ..Default::default() }).csr);
//! let mut engine = LightTraffic::new(
//!     g.clone(),
//!     Arc::new(UniformSampling::new(80)),
//!     EngineConfig::light_traffic(64 << 10, 4),
//! ).unwrap();
//! let result = engine.run(2 * g.num_vertices()).unwrap();
//! assert_eq!(result.metrics.finished_walks, 2 * g.num_vertices());
//! ```

pub use lt_baselines as baselines;
pub use lt_engine as engine;
pub use lt_gpusim as gpusim;
pub use lt_graph as graph;
pub use lt_multigpu as multigpu;
pub use lt_server as server;
pub use lt_telemetry as telemetry;
