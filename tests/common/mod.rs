//! Shared shrinkable generators for the integration-test binaries.
//!
//! `proptest_engine`, `proptest_graph`, and `differential` all sample the
//! same spaces — arbitrary graphs, arbitrary edge lists, and arbitrary
//! engine configurations. Keeping the strategies here means a widened knob
//! (say a new thread count) immediately widens every suite, and shrunk
//! counterexamples are comparable across suites.
//!
//! Each integration-test binary compiles this module independently and
//! uses a different subset of it.
#![allow(dead_code)]

use lighttraffic::engine::{
    EdgeUpdate, EngineConfig, HostExec, ReloadPolicy, ReshuffleMode, ZeroCopyPolicy,
};
use lighttraffic::gpusim::GpuConfig;
use lighttraffic::graph::builder::GraphBuilder;
use lighttraffic::graph::gen::{erdos_renyi, rmat, RmatParams};
use lighttraffic::graph::{Csr, PartitionedGraph, VertexId};
use proptest::prelude::*;
use std::sync::Arc;

/// Every engine knob the property suites vary. Plain data so proptest can
/// shrink it field-wise toward the all-minimal configuration.
#[derive(Clone, Debug)]
pub struct ArbConfig {
    pub partition_kb: u64,
    pub graph_pool: usize,
    pub batch_capacity: usize,
    pub preemptive: bool,
    pub selective: bool,
    pub zero_copy: u8,
    pub direct_reshuffle: bool,
    pub tight_walk_pool: bool,
    pub kernel_threads: usize,
    pub reshuffle_threads: usize,
    pub host_exec: u8,
}

/// Strategy over [`ArbConfig`]: small pools, both scheduling policies,
/// all zero-copy policies, both reshuffle modes, thread counts 0–4 for
/// both the kernel and reshuffle pipelines (0 = auto), and all three
/// host execution strategies (spawn / pool / pipeline).
pub fn config_strategy() -> impl Strategy<Value = ArbConfig> {
    (
        4u64..64,
        1usize..8,
        8usize..512,
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        any::<bool>(),
        any::<bool>(),
        (0usize..5, 0usize..5, 0u8..3),
    )
        .prop_map(
            |(
                partition_kb,
                graph_pool,
                batch_capacity,
                preemptive,
                selective,
                zero_copy,
                direct_reshuffle,
                tight_walk_pool,
                (kernel_threads, reshuffle_threads, host_exec),
            )| ArbConfig {
                partition_kb,
                graph_pool,
                batch_capacity,
                preemptive,
                selective,
                zero_copy,
                direct_reshuffle,
                tight_walk_pool,
                kernel_threads,
                reshuffle_threads,
                host_exec,
            },
        )
}

/// Decode the [`ArbConfig::host_exec`] discriminant (shrinks toward
/// `Spawn`, the legacy reference path).
pub fn host_exec_of(d: u8) -> HostExec {
    match d {
        0 => HostExec::Spawn,
        1 => HostExec::Pool,
        _ => HostExec::Pipeline,
    }
}

/// Strategy over small graphs: R-MAT (skewed) or Erdős–Rényi (uniform),
/// 256–2048 vertices.
pub fn graph_strategy() -> impl Strategy<Value = Arc<Csr>> {
    (8u32..12, 4u32..12, 0u64..1000, any::<bool>()).prop_map(|(scale, ef, seed, skewed)| {
        Arc::new(if skewed {
            rmat(RmatParams {
                scale,
                edge_factor: ef,
                seed,
                ..RmatParams::default()
            })
            .csr
        } else {
            erdos_renyi(1 << scale, (1u64 << scale) * ef as u64, seed).csr
        })
    })
}

/// Deterministic point in [`graph_strategy`]'s space for table-driven
/// suites (the differential battery sweeps `seed` instead of sampling):
/// R-MAT for even seeds, Erdős–Rényi for odd, 256–1024 vertices.
pub fn random_graph(seed: u64) -> Arc<Csr> {
    let scale = 8 + (seed % 3) as u32;
    let ef = 4 + seed % 7;
    Arc::new(if seed.is_multiple_of(2) {
        rmat(RmatParams {
            scale,
            edge_factor: ef as u32,
            seed,
            ..RmatParams::default()
        })
        .csr
    } else {
        erdos_renyi(1 << scale, (1u64 << scale) * ef, seed).csr
    })
}

/// Arbitrary edge list over up to 64 vertices (graph-substrate suites).
pub fn edges_strategy() -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0u32..64, 0u32..64), 1..300)
}

/// A shrinkable edge mutation before it is bound to a concrete graph:
/// `(src raw, dst raw, op discriminant, explicit timestamp)`. Bind with
/// [`materialize_update`] once the vertex count is known, so shrinking
/// stays meaningful across differently-sized sampled graphs.
pub type RawUpdate = (u32, u32, u8, Option<u32>);

/// Strategy over mutation schedules (see [`materialize_update`] for how
/// the discriminant splits into inserts and deletes).
pub fn raw_updates_strategy(max: usize) -> impl Strategy<Value = Vec<RawUpdate>> {
    prop::collection::vec(
        (any::<u32>(), any::<u32>(), 0u8..10, explicit_ts_strategy()),
        0..max,
    )
}

/// Edge-timestamp strategy for temporal graphs and timestamped inserts:
/// small values keep sliding windows selective instead of admitting every
/// edge.
pub fn timestamp_strategy() -> impl Strategy<Value = u32> {
    0u32..16
}

/// `None` half the time (epoch-stamped insert), an explicit small
/// timestamp otherwise.
fn explicit_ts_strategy() -> impl Strategy<Value = Option<u32>> {
    (any::<bool>(), timestamp_strategy()).prop_map(|(some, t)| some.then_some(t))
}

/// Bind a [`RawUpdate`] to `g`'s frozen vertex set. Discriminants 0–5
/// insert (carrying the explicit timestamp when one was sampled), 6–7
/// delete a *real* base edge of the source when it has any (exercising
/// actual removals on sparse graphs), and 8–9 delete an arbitrary pair
/// (usually an absent-edge no-op — its semantics matter too).
pub fn materialize_update(raw: &RawUpdate, g: &Csr) -> EdgeUpdate {
    let nv = g.num_vertices() as u32;
    let (src, dst) = (raw.0 % nv, raw.1 % nv);
    match raw.2 {
        0..=5 => match raw.3 {
            Some(t) => EdgeUpdate::insert_at(src, dst, t),
            None => EdgeUpdate::insert(src, dst),
        },
        6 | 7 => {
            let row = g.neighbors(src);
            if row.is_empty() {
                EdgeUpdate::delete(src, dst)
            } else {
                EdgeUpdate::delete(src, row[dst as usize % row.len()])
            }
        }
        _ => EdgeUpdate::delete(src, dst),
    }
}

/// Build a CSR from an arbitrary edge list; `None` when preprocessing
/// rejects it (every edge a self loop).
pub fn build_csr(edges: &[(VertexId, VertexId)]) -> Option<Csr> {
    GraphBuilder::new()
        .extend_edges(edges.iter().copied())
        .build()
        .ok()
        .map(|b| b.csr)
}

/// Materialize an [`ArbConfig`] against a concrete graph (the tight walk
/// pool floor depends on the partition count).
pub fn to_engine_config(c: &ArbConfig, g: &Arc<Csr>) -> EngineConfig {
    let partition_bytes = c.partition_kb << 10;
    let p = PartitionedGraph::build(g.clone(), partition_bytes).num_partitions() as usize;
    EngineConfig {
        partition_bytes,
        batch_capacity: c.batch_capacity,
        graph_pool_blocks: c.graph_pool,
        walk_pool_blocks: if c.tight_walk_pool {
            Some(2 * p + 1)
        } else {
            None
        },
        seed: 42,
        preemptive: c.preemptive,
        selective: c.selective,
        zero_copy: match c.zero_copy {
            0 => ZeroCopyPolicy::Never,
            1 => ZeroCopyPolicy::Always,
            _ => ZeroCopyPolicy::adaptive(),
        },
        reshuffle: if c.direct_reshuffle {
            ReshuffleMode::DirectWrite
        } else {
            ReshuffleMode::default()
        },
        record_iterations: false,
        record_paths: false,
        gpu: GpuConfig {
            record_ops: true,
            ..GpuConfig::default()
        },
        max_iterations: 10_000_000,
        kernel_threads: c.kernel_threads,
        reshuffle_threads: c.reshuffle_threads,
        host_exec: host_exec_of(c.host_exec),
        min_chunk_walkers: 0,
        min_movers_per_worker: 0,
        track_tags: false,
        // Attribution on across the whole differential battery: the
        // ledger is quarantined off the deterministic path (DESIGN.md
        // §14), so every fingerprint comparison in these sweeps doubles
        // as proof that tracing perturbs nothing.
        attribution: true,
        reload_policy: ReloadPolicy::default(),
        compaction_threshold: 0,
        host_cache_partitions: 0,
        checkpoint_every: None,
        copy_retries: 3,
        retry_backoff_ns: 200_000,
        corruption_degrade_threshold: 3,
    }
}
