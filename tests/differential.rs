//! Differential test battery: LightTraffic vs the plain CPU engine, and
//! LightTraffic vs itself across thread counts and fault injection.
//!
//! Trajectories are pure functions of `(seed, walk_id, step)` (see
//! `crates/lt-engine/src/rng.rs`), so every engine that steps the same
//! walks under the same seed must visit the same vertices — regardless of
//! partitioning, pool pressure, scheduling policy, host thread counts, or
//! retryable device faults. This suite checks that equivalence on a sweep
//! of random graphs with embedding-style workloads (DeepWalk-style
//! first-order and node2vec-style second-order walks), which — unlike
//! PageRank — do not track visit counts natively: counts are derived from
//! recorded paths on the engine side and from forced tracking on the
//! baseline side ([`cpu::run_walk_centric_tracked`]).
//!
//! The node2vec configuration pins [`ZeroCopyPolicy::Always`]: second-order
//! weights need the previous vertex's adjacency, which a partition-resident
//! kernel cannot always serve (the documented asymmetry in
//! `kernel.rs`) — zero copy reads the full CSR, making engine and baseline
//! contexts identical.

mod common;

use common::random_graph;
use lighttraffic::baselines::cpu;
use lighttraffic::engine::algorithm::{SecondOrderWalk, UniformSampling, WalkAlgorithm};
use lighttraffic::engine::{EngineConfig, HostExec, LightTraffic, RunResult, ZeroCopyPolicy};
use lighttraffic::gpusim::{FaultPlan, GpuConfig};
use lighttraffic::graph::Csr;
use std::sync::Arc;

const SEED: u64 = 42;

/// The two embedding-style workloads of the battery.
fn algorithms() -> Vec<(&'static str, Arc<dyn WalkAlgorithm>, ZeroCopyPolicy)> {
    vec![
        (
            "deepwalk",
            Arc::new(UniformSampling::new(8)) as Arc<dyn WalkAlgorithm>,
            ZeroCopyPolicy::adaptive(),
        ),
        (
            "node2vec",
            Arc::new(SecondOrderWalk::node2vec(8, 0.5, 2.0)),
            ZeroCopyPolicy::Always,
        ),
    ]
}

fn config(
    zero_copy: ZeroCopyPolicy,
    kernel_threads: usize,
    reshuffle_threads: usize,
    faults: Option<FaultPlan>,
) -> EngineConfig {
    EngineConfig {
        batch_capacity: 128,
        seed: SEED,
        record_paths: true,
        // The whole battery runs with traffic attribution on: the ledger
        // must never perturb trajectories or fingerprints (DESIGN.md §14).
        attribution: true,
        zero_copy,
        kernel_threads,
        reshuffle_threads,
        gpu: GpuConfig {
            faults,
            ..GpuConfig::default()
        },
        ..EngineConfig::light_traffic(8 << 10, 4)
    }
}

/// Per-vertex visit counts derived from recorded paths (start vertex
/// excluded — a "visit" is a step target, matching the tracking engines).
fn visits_from_paths(r: &RunResult, nv: u64) -> Vec<u64> {
    let mut counts = vec![0u64; nv as usize];
    for path in r.paths.as_ref().expect("paths were recorded") {
        for &v in &path[1..] {
            counts[v as usize] += 1;
        }
    }
    counts
}

fn run_engine(g: &Arc<Csr>, alg: &Arc<dyn WalkAlgorithm>, cfg: EngineConfig) -> RunResult {
    let walks = g.num_vertices().min(1_000);
    let mut e = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("pools fit");
    e.run(walks).expect("run completes")
}

/// 20 random graphs × {DeepWalk, node2vec}: the engine's trajectory-derived
/// visit counts equal the CPU baseline's under the shared RNG.
#[test]
fn engine_matches_cpu_baseline_on_twenty_graphs() {
    for graph_seed in 0..20u64 {
        let g = random_graph(graph_seed);
        let walks = g.num_vertices().min(1_000);
        for (name, alg, zc) in algorithms() {
            let r = run_engine(&g, &alg, config(zc, 1, 1, None));
            let engine_visits = visits_from_paths(&r, g.num_vertices());
            let baseline = cpu::run_walk_centric_tracked(&g, &alg, walks, SEED, 1);
            assert_eq!(
                engine_visits,
                baseline.visits.expect("tracked run has visits"),
                "graph seed {graph_seed}, {name}: engine and baseline visit counts diverged"
            );
            assert_eq!(r.metrics.finished_walks, baseline.metrics.finished_walks);
            assert_eq!(r.metrics.total_steps, baseline.metrics.total_steps);
        }
    }
}

/// Visit counts are identical across `kernel_threads` × `reshuffle_threads`
/// in {1, 4}, with and without injected retryable faults. Retries replay
/// copies on the simulated timeline but never alter trajectories.
#[test]
fn thread_counts_and_retryable_faults_do_not_change_results() {
    for graph_seed in [3u64, 8, 13] {
        let g = random_graph(graph_seed);
        for (name, alg, zc) in algorithms() {
            let reference = visits_from_paths(
                &run_engine(&g, &alg, config(zc, 1, 1, None)),
                g.num_vertices(),
            );
            for kernel_threads in [1usize, 4] {
                for reshuffle_threads in [1usize, 4] {
                    for faults in [None, Some(FaultPlan::retryable_only(7, 0.05))] {
                        let faulty = faults.is_some();
                        let cfg = config(zc, kernel_threads, reshuffle_threads, faults);
                        let r = run_engine(&g, &alg, cfg);
                        if faulty {
                            assert!(
                                r.metrics.retries > 0 || r.metrics.faults_injected == 0,
                                "injected faults were never retried"
                            );
                        }
                        assert_eq!(
                            visits_from_paths(&r, g.num_vertices()),
                            reference,
                            "graph seed {graph_seed}, {name}, kt={kernel_threads}, \
                             rt={reshuffle_threads}, faults={faulty}"
                        );
                    }
                }
            }
        }
    }
}

/// Acceptance check for the sharded reshuffle: `reshuffle_threads` ∈
/// {1, 2, 4, 8} produce **bit-identical** runs — paths, visit counts,
/// simulated clock, and the full device-stats breakdown. Only the
/// wall-clock/fan-out bookkeeping may differ.
#[test]
fn sharded_reshuffle_is_bit_identical_across_thread_counts() {
    for graph_seed in [2u64, 5] {
        let g = random_graph(graph_seed);
        for (name, alg, zc) in algorithms() {
            let fingerprint = |threads: usize| {
                let mut r = run_engine(&g, &alg, config(zc, 1, threads, None));
                // Host wall-clock and fan-out bookkeeping are the only
                // machine/thread-dependent outputs; everything else must
                // match byte for byte.
                r.metrics.host_kernel_wall_ns = 0;
                r.metrics.host_reshuffle_wall_ns = 0;
                r.metrics.max_kernel_threads = 0;
                r.metrics.max_reshuffle_threads = 0;
                r.metrics.host_spawn_rounds = 0;
                r.metrics.host_spec_hits = 0;
                r.metrics.host_spec_misses = 0;
                r.metrics.host_strategy_switches = 0;
                format!(
                    "{}|{}|{}",
                    serde_json::to_string(&r.metrics).unwrap(),
                    serde_json::to_string(&r.gpu).unwrap(),
                    serde_json::to_string(&r.paths).unwrap(),
                )
            };
            let serial = fingerprint(1);
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    fingerprint(threads),
                    serial,
                    "graph seed {graph_seed}, {name}: reshuffle_threads={threads} \
                     diverged from the serial pipeline"
                );
            }
        }
    }
}

/// Acceptance check for the persistent executor (DESIGN.md §11–§12): the
/// four host execution strategies — legacy scoped spawns, the persistent
/// pool, the pipelined pool with speculative stepping, and the adaptive
/// chooser — produce **bit-identical** runs (paths, visit counts,
/// simulated clock, full device-stats breakdown) for every host fan-out,
/// with and without injected retryable faults. The fixed pool strategies
/// must also never spawn a per-batch thread (`host_spawn_rounds == 0`);
/// Auto is exempt because it may legitimately pick the spawn strategy.
#[test]
fn host_exec_strategies_are_bit_identical() {
    for graph_seed in [4u64, 9] {
        let g = random_graph(graph_seed);
        for (name, alg, zc) in algorithms() {
            let fingerprint = |mode: HostExec, threads: usize, fault_seed: Option<u64>| {
                let mut cfg = config(
                    zc,
                    threads,
                    threads,
                    fault_seed.map(|s| FaultPlan::retryable_only(s, 0.05)),
                );
                cfg.host_exec = mode;
                let mut r = run_engine(&g, &alg, cfg);
                let spawns = r.metrics.host_spawn_rounds;
                // Host wall-clock and host-strategy bookkeeping are the
                // only mode/thread-dependent outputs.
                r.metrics.host_kernel_wall_ns = 0;
                r.metrics.host_reshuffle_wall_ns = 0;
                r.metrics.max_kernel_threads = 0;
                r.metrics.max_reshuffle_threads = 0;
                r.metrics.host_spawn_rounds = 0;
                r.metrics.host_spec_hits = 0;
                r.metrics.host_spec_misses = 0;
                r.metrics.host_strategy_switches = 0;
                (
                    spawns,
                    format!(
                        "{}|{}|{}",
                        serde_json::to_string(&r.metrics).unwrap(),
                        serde_json::to_string(&r.gpu).unwrap(),
                        serde_json::to_string(&r.paths).unwrap(),
                    ),
                )
            };
            for threads in [1usize, 2, 4, 8] {
                for fault_seed in [None, Some(11u64)] {
                    let (_, reference) = fingerprint(HostExec::Spawn, threads, fault_seed);
                    for mode in [HostExec::Pool, HostExec::Pipeline, HostExec::Auto] {
                        let (spawns, fp) = fingerprint(mode, threads, fault_seed);
                        if mode != HostExec::Auto {
                            assert_eq!(
                                spawns, 0,
                                "graph seed {graph_seed}, {name}, {mode:?}: the pool \
                                 strategies must not spawn per-batch threads"
                            );
                        }
                        assert_eq!(
                            fp,
                            reference,
                            "graph seed {graph_seed}, {name}, threads={threads}, \
                             faults={}: {mode:?} diverged from the spawn strategy",
                            fault_seed.is_some()
                        );
                    }
                }
            }
        }
    }
}
