//! Mutation-aware differential battery (DESIGN.md §15): the engine's
//! evolving-graph path — delta overlay, epoch seals, dirty-partition
//! reloads, compaction — against the naive adjacency-list CPU walker in
//! `lt_baselines::evolving`, replaying the *same seeded edge-update
//! schedule* on both sides.
//!
//! Mutations are only sealed at inter-wave barriers (run to quiescence,
//! then seal), which is the regime where visibility is deterministic: a
//! wave's trajectories depend on the sealed adjacency alone, never on
//! scheduling. The battery therefore demands **bit-identical** visit
//! fingerprints across kernel-thread counts, host execution strategies,
//! retryable fault injection, and compaction cadence — none of which may
//! leak into what a walker observes.

mod common;

use common::random_graph;
use lighttraffic::baselines::evolving::{run_evolving_waves, Wave};
use lighttraffic::engine::algorithm::{TemporalWalk, UniformSampling, WalkAlgorithm};
use lighttraffic::engine::{
    EdgeOp, EdgeUpdate, EngineConfig, HostExec, LightTraffic, RunResult, RunStatus, Session,
    ZeroCopyPolicy,
};
use lighttraffic::gpusim::{FaultPlan, GpuConfig};
use lighttraffic::graph::{Csr, VertexId};
use std::sync::Arc;

const SEED: u64 = 42;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A seeded wave schedule over `g`'s frozen vertex set: each wave injects
/// `walks` walks and then seals a mix of inserts (some with explicit
/// timestamps on temporal graphs, the rest epoch-stamped) and deletes
/// (half aimed at real base edges, half at arbitrary pairs whose absence
/// makes them no-ops — both sides must agree on no-op semantics too).
fn schedule(g: &Csr, schedule_seed: u64, waves: usize, per_wave: usize, walks: u64) -> Vec<Wave> {
    let nv = g.num_vertices();
    let mut state = schedule_seed | 1;
    (0..waves)
        .map(|_| {
            let updates = (0..per_wave)
                .map(|_| {
                    let src = (xorshift(&mut state) % nv) as VertexId;
                    let dst = (xorshift(&mut state) % nv) as VertexId;
                    match xorshift(&mut state) % 10 {
                        0..=4 => EdgeUpdate::insert(src, dst),
                        5 if g.is_temporal() => {
                            EdgeUpdate::insert_at(src, dst, (xorshift(&mut state) % 16) as u32)
                        }
                        5 => EdgeUpdate::insert(src, dst),
                        6 | 7 => {
                            // Aim at a real edge of `src` when it has any.
                            let row = g.neighbors(src);
                            if row.is_empty() {
                                EdgeUpdate::delete(src, dst)
                            } else {
                                let k = (xorshift(&mut state) as usize) % row.len();
                                EdgeUpdate::delete(src, row[k])
                            }
                        }
                        _ => EdgeUpdate::delete(src, dst),
                    }
                })
                .collect();
            Wave { walks, updates }
        })
        .collect()
}

/// When (relative to seals) the engine folds its overlay into a new base.
#[derive(Clone, Copy, Debug)]
enum Cadence {
    /// Never compact: the overlay grows for the whole run.
    Never,
    /// Explicit compaction after every seal.
    EverySeal,
    /// Auto-compaction via `compaction_threshold = 1` (any non-empty
    /// overlay compacts inside the seal itself).
    Auto,
}

fn config(
    kernel_threads: usize,
    host_exec: HostExec,
    faults: Option<FaultPlan>,
    cadence: Cadence,
) -> EngineConfig {
    EngineConfig {
        batch_capacity: 128,
        seed: SEED,
        record_paths: true,
        attribution: true,
        zero_copy: ZeroCopyPolicy::adaptive(),
        kernel_threads,
        host_exec,
        compaction_threshold: match cadence {
            Cadence::Auto => 1,
            _ => 0,
        },
        gpu: GpuConfig {
            faults,
            ..GpuConfig::default()
        },
        ..EngineConfig::light_traffic(8 << 10, 4)
    }
}

fn drain(s: &mut Session) -> RunResult {
    match s.step(u64::MAX).expect("wave completes") {
        RunStatus::Completed(r) => *r,
        other => unreachable!("unbounded step cannot pause: {other:?}"),
    }
}

/// Drive the wave schedule through the engine: inject (ids offset past
/// earlier waves so every trajectory draws distinct randomness), run to
/// quiescence, seal the wave's updates, optionally compact. Returns the
/// final cumulative result.
fn run_engine_waves(
    g: &Arc<Csr>,
    alg: &Arc<dyn WalkAlgorithm>,
    cfg: EngineConfig,
    waves: &[Wave],
    cadence: Cadence,
) -> RunResult {
    let mut s = LightTraffic::session(g.clone(), alg.clone(), cfg).expect("pools fit");
    let mut next_id = 0u64;
    let mut last = None;
    for wave in waves {
        let mut walkers = alg.initial_walkers(g, wave.walks);
        for w in &mut walkers {
            w.id += next_id;
        }
        next_id += wave.walks;
        s.inject(walkers);
        last = Some(drain(&mut s));
        s.mutate(wave.updates.clone()).expect("schedule is valid");
        s.seal_epoch().expect("seal succeeds");
        if matches!(cadence, Cadence::EverySeal) {
            s.compact();
        }
    }
    last.expect("schedule has at least one wave")
}

/// Per-vertex visit counts from recorded paths (start vertex excluded; a
/// visit is a step target), the engine-side fingerprint.
fn visits_from_paths(r: &RunResult, nv: u64) -> Vec<u64> {
    let mut counts = vec![0u64; nv as usize];
    for path in r.paths.as_ref().expect("paths were recorded") {
        for &v in path.iter().skip(1) {
            counts[v as usize] += 1;
        }
    }
    counts
}

/// `random_graph(3)` with deterministic small timestamps attached, so the
/// temporal window actually filters candidates and epoch-stamped inserts
/// land inside later windows.
fn temporal_graph() -> Arc<Csr> {
    let g = random_graph(3);
    let ts = (0..g.num_edges())
        .map(|i| (i.wrapping_mul(2654435761) % 16) as u32)
        .collect();
    Arc::new(
        Csr::with_timestamps(g.offsets().to_vec(), g.edges().to_vec(), None, Some(ts))
            .expect("re-stamped CSR stays valid"),
    )
}

/// The battery: for a skewed static-start graph under DeepWalk-style
/// uniform walks and a timestamped graph under temporal walks, every
/// point of the kernel-threads × host-exec × faults × compaction-cadence
/// grid reproduces the naive CPU walker's fingerprint exactly.
#[test]
fn evolving_engine_matches_naive_walker_across_execution_grid() {
    let workloads: Vec<(&str, Arc<Csr>, Arc<dyn WalkAlgorithm>)> = vec![
        (
            "uniform",
            random_graph(6),
            Arc::new(UniformSampling::new(8)),
        ),
        (
            "temporal",
            temporal_graph(),
            Arc::new(TemporalWalk::new(8, 4)),
        ),
    ];
    for (name, g, alg) in workloads {
        let waves = schedule(&g, 0xC0FFEE ^ g.num_edges(), 4, 48, 192);
        let mutated: u64 = waves
            .iter()
            .flat_map(|w| &w.updates)
            .filter(|u| u.op == EdgeOp::Insert)
            .count() as u64;
        assert!(mutated > 0, "{name}: schedule must actually mutate");

        let baseline = run_evolving_waves(&g, &alg, &waves, SEED);
        let expected = baseline.visits.expect("baseline tracks visits");

        for kernel_threads in [1usize, 4] {
            for host_exec in [HostExec::Spawn, HostExec::Pool, HostExec::Pipeline] {
                for faults in [None, Some(FaultPlan::retryable_only(7, 0.05))] {
                    for cadence in [Cadence::Never, Cadence::EverySeal, Cadence::Auto] {
                        let faulty = faults.is_some();
                        let cfg = config(kernel_threads, host_exec, faults.clone(), cadence);
                        let r = run_engine_waves(&g, &alg, cfg, &waves, cadence);
                        assert_eq!(
                            visits_from_paths(&r, g.num_vertices()),
                            expected,
                            "{name}: kt={kernel_threads}, exec={host_exec:?}, \
                             faults={faulty}, cadence={cadence:?} diverged from \
                             the naive walker"
                        );
                        assert_eq!(r.metrics.total_steps, baseline.metrics.total_steps);
                        assert_eq!(r.metrics.finished_walks, baseline.metrics.finished_walks);
                    }
                }
            }
        }
    }
}

/// The same schedule sealed mid-run is *not* required to match the waves
/// baseline — but the engine itself must stay deterministic: two identical
/// runs that seal at identical barriers agree bit for bit even when seals
/// interleave with live walks.
#[test]
fn mid_flight_seals_are_reproducible() {
    let g = random_graph(6);
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(8));
    let waves = schedule(&g, 99, 3, 32, 256);
    let run = || {
        let mut s = LightTraffic::session(
            g.clone(),
            alg.clone(),
            config(1, HostExec::Spawn, None, Cadence::Never),
        )
        .expect("pools fit");
        s.inject_walks(256);
        for wave in &waves {
            // Seal after a bounded slice, with walks still in flight.
            let _ = s.step(2).expect("slice runs");
            s.mutate(wave.updates.clone()).expect("schedule is valid");
            s.seal_epoch().expect("seal succeeds");
        }
        let r = drain(&mut s);
        (
            visits_from_paths(&r, g.num_vertices()),
            r.metrics.total_steps,
            r.metrics.makespan_ns,
        )
    };
    assert_eq!(run(), run(), "identical barrier placement must reproduce");
}
