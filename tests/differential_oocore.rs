//! Differential battery for the out-of-core compressed CSR substrate:
//! an engine reading partitions from a delta+varint compressed file
//! through the host decode cache must be **bit-identical** to the same
//! engine over the RAM-resident graph — same walks, same paths, same
//! simulated clock, same device-stats breakdown — across kernel thread
//! counts, host execution strategies, and retryable fault injection.
//!
//! The only outputs allowed to differ are the host-tier counters the RAM
//! store never touches (`host_decode_bytes`, `host_cache_*`) and the
//! wall-clock/fan-out bookkeeping every differential fingerprint already
//! masks. A separate test pins the host-tier counters themselves:
//! decode and cache behavior is schedule-deterministic, so OOC runs
//! fingerprint identically across thread counts *without* masking them.
//!
//! Also covered: the DESIGN.md §14 exactness invariant extended to the
//! host tier — every decoded byte lands in exactly one
//! `(SHARED_TAG, partition, host_load)` ledger cell, and the link
//! directions stay untouched by host-tier traffic.

mod common;

use common::random_graph;
use lighttraffic::engine::algorithm::{SecondOrderWalk, UniformSampling, WalkAlgorithm};
use lighttraffic::engine::{EngineConfig, HostExec, LightTraffic, RunResult, ZeroCopyPolicy};
use lighttraffic::gpusim::{FaultPlan, GpuConfig};
use lighttraffic::graph::oocore::write_oocore;
use lighttraffic::graph::{Csr, GraphStore, OocGraph, PartitionedGraph};
use lighttraffic::telemetry::SHARED_TAG;
use std::sync::Arc;

const SEED: u64 = 42;
const PARTITION_BYTES: u64 = 8 << 10;

/// The two embedding-style workloads of the battery (same pair as
/// `differential.rs`; node2vec pins zero copy for the second-order
/// asymmetry documented there, which on an out-of-core store exercises
/// the `OocHostView` path).
fn algorithms() -> Vec<(&'static str, Arc<dyn WalkAlgorithm>, ZeroCopyPolicy)> {
    vec![
        (
            "deepwalk",
            Arc::new(UniformSampling::new(8)) as Arc<dyn WalkAlgorithm>,
            ZeroCopyPolicy::adaptive(),
        ),
        (
            "node2vec",
            Arc::new(SecondOrderWalk::node2vec(8, 0.5, 2.0)),
            ZeroCopyPolicy::Always,
        ),
    ]
}

fn config(
    zero_copy: ZeroCopyPolicy,
    kernel_threads: usize,
    host_exec: HostExec,
    faults: Option<FaultPlan>,
) -> EngineConfig {
    EngineConfig {
        batch_capacity: 128,
        seed: SEED,
        record_paths: true,
        attribution: true,
        zero_copy,
        kernel_threads,
        host_exec,
        gpu: GpuConfig {
            faults,
            ..GpuConfig::default()
        },
        ..EngineConfig::light_traffic(PARTITION_BYTES, 4)
    }
}

/// Write `g` to a compressed out-of-core file (partitioned at the same
/// budget the RAM engine uses, so both substrates share one partition
/// geometry) and open it back. The file is unlinked immediately — the
/// open descriptor keeps the data readable.
fn ooc_graph(g: &Arc<Csr>, name: &str) -> Arc<OocGraph> {
    let pg = PartitionedGraph::build(Arc::clone(g), PARTITION_BYTES);
    let mut path = std::env::temp_dir();
    path.push(format!("lt_diff_ooc_{name}_{}.ltg", std::process::id()));
    write_oocore(&pg, &path).expect("write out-of-core file");
    let ooc = OocGraph::open(&path).expect("reopen out-of-core file");
    std::fs::remove_file(&path).ok();
    Arc::new(ooc)
}

fn run_ram(g: &Arc<Csr>, alg: &Arc<dyn WalkAlgorithm>, cfg: EngineConfig) -> RunResult {
    let walks = g.num_vertices().min(1_000);
    let mut e = LightTraffic::new(Arc::clone(g), Arc::clone(alg), cfg).expect("pools fit");
    e.run(walks).expect("run completes")
}

fn run_ooc(ooc: &Arc<OocGraph>, alg: &Arc<dyn WalkAlgorithm>, cfg: EngineConfig) -> RunResult {
    let walks = ooc.num_vertices().min(1_000);
    let mut e = LightTraffic::from_store(
        GraphStore::OutOfCore(Arc::clone(ooc)),
        Arc::clone(alg),
        cfg,
    )
    .expect("pools fit");
    e.run(walks).expect("run completes")
}

/// The standard differential fingerprint: everything except host
/// wall-clock and fan-out bookkeeping (machine-dependent) — including
/// the deterministic host-tier counters.
fn fingerprint(mut r: RunResult) -> String {
    r.metrics.host_kernel_wall_ns = 0;
    r.metrics.host_reshuffle_wall_ns = 0;
    r.metrics.max_kernel_threads = 0;
    r.metrics.max_reshuffle_threads = 0;
    r.metrics.host_spawn_rounds = 0;
    r.metrics.host_spec_hits = 0;
    r.metrics.host_spec_misses = 0;
    r.metrics.host_strategy_switches = 0;
    r.metrics.host_decode_wall_ns = 0;
    format!(
        "{}|{}|{}",
        serde_json::to_string(&r.metrics).unwrap(),
        serde_json::to_string(&r.gpu).unwrap(),
        serde_json::to_string(&r.paths).unwrap(),
    )
}

/// [`fingerprint`] with the host-tier counters additionally masked — the
/// substrate-comparison form (a RAM store never decodes, so these are
/// the one legitimate Ram/OOC difference).
fn tier_masked_fingerprint(mut r: RunResult) -> String {
    r.metrics.host_decode_bytes = 0;
    r.metrics.host_cache_hits = 0;
    r.metrics.host_cache_misses = 0;
    r.metrics.host_cache_evictions = 0;
    fingerprint(r)
}

/// The acceptance matrix: Ram vs OutOfCore, cell by cell over
/// kernel_threads × host-exec strategy × retryable faults, bit-identical
/// outside the host tier. The OOC run must actually exercise the tier
/// (decode bytes flow on every cell — the store has no other source of
/// adjacency).
#[test]
fn ooc_is_bit_identical_to_ram_across_threads_exec_and_faults() {
    for graph_seed in [3u64, 8] {
        let g = random_graph(graph_seed);
        for (name, alg, zc) in algorithms() {
            let ooc = ooc_graph(&g, &format!("battery_{graph_seed}_{name}"));
            for kernel_threads in [1usize, 4] {
                for host_exec in [HostExec::Spawn, HostExec::Auto] {
                    for fault_seed in [None, Some(7u64)] {
                        let faults = fault_seed.map(|s| FaultPlan::retryable_only(s, 0.05));
                        let cfg = config(zc, kernel_threads, host_exec, faults.clone());
                        let ram = run_ram(&g, &alg, cfg.clone());
                        let ooc_run = run_ooc(&ooc, &alg, cfg);
                        assert_eq!(
                            ram.metrics.host_decode_bytes, 0,
                            "RAM stores must never touch the host decode tier"
                        );
                        assert!(
                            ooc_run.metrics.host_decode_bytes > 0,
                            "OOC run never decoded — the substrate was not exercised"
                        );
                        assert_eq!(
                            tier_masked_fingerprint(ooc_run),
                            tier_masked_fingerprint(ram),
                            "graph seed {graph_seed}, {name}, kt={kernel_threads}, \
                             {host_exec:?}, faults={}: out-of-core run diverged from RAM",
                            fault_seed.is_some()
                        );
                    }
                }
            }
        }
    }
}

/// The host tier itself is deterministic: OOC fingerprints — *including*
/// decode bytes and cache hit/miss/eviction counts — are identical
/// across kernel thread counts and host execution strategies. Decode
/// requests happen at schedule-deterministic points on the scheduler
/// thread; worker fan-out only splits fixed chunk boundaries.
#[test]
fn ooc_host_tier_counters_are_deterministic() {
    let g = random_graph(5);
    for (name, alg, zc) in algorithms() {
        let ooc = ooc_graph(&g, &format!("determinism_{name}"));
        let reference = fingerprint(run_ooc(&ooc, &alg, config(zc, 1, HostExec::Spawn, None)));
        for kernel_threads in [1usize, 4] {
            for host_exec in [HostExec::Spawn, HostExec::Pool, HostExec::Pipeline, HostExec::Auto]
            {
                let r = run_ooc(&ooc, &alg, config(zc, kernel_threads, host_exec, None));
                assert_eq!(
                    fingerprint(r),
                    reference,
                    "{name}, kt={kernel_threads}, {host_exec:?}: host-tier counters \
                     are not schedule-deterministic"
                );
            }
        }
    }
}

/// A small host cache under memory pressure must evict — and eviction
/// must not change any output: a one-slot cache fingerprints identically
/// (host-tier counters masked, since hit/miss totals legitimately
/// change with capacity) to a cache holding every partition.
#[test]
fn host_cache_pressure_changes_no_output() {
    let g = random_graph(6);
    let (name, alg, zc) = algorithms().remove(0);
    let ooc = ooc_graph(&g, &format!("pressure_{name}"));
    let roomy = {
        let mut cfg = config(zc, 2, HostExec::Auto, None);
        cfg.host_cache_partitions = ooc.num_partitions() as usize;
        run_ooc(&ooc, &alg, cfg)
    };
    let tight = {
        let mut cfg = config(zc, 2, HostExec::Auto, None);
        cfg.host_cache_partitions = 1;
        run_ooc(&ooc, &alg, cfg)
    };
    assert!(
        tight.metrics.host_cache_evictions > 0,
        "a one-slot cache over {} partitions never evicted",
        ooc.num_partitions()
    );
    assert_eq!(
        tier_masked_fingerprint(tight),
        tier_masked_fingerprint(roomy),
        "cache capacity leaked into walk output"
    );
}

/// DESIGN.md §14 extended to the host tier: every decoded byte is
/// attributed to exactly one `(SHARED_TAG, partition, host_load)` cell —
/// Σ cells == `host_decode_bytes` with zero drift — while the link
/// directions (H2D/D2H) still reconcile exactly against the device's own
/// counters, unpolluted by host-tier traffic.
#[test]
fn host_load_attribution_is_exact() {
    let g = random_graph(4);
    for (name, alg, zc) in algorithms() {
        let ooc = ooc_graph(&g, &format!("ledger_{name}"));
        let walks = ooc.num_vertices().min(1_000);
        let mut e = LightTraffic::from_store(
            GraphStore::OutOfCore(Arc::clone(&ooc)),
            Arc::clone(&alg),
            config(zc, 2, HostExec::Auto, None),
        )
        .expect("pools fit");
        let r = e.run(walks).expect("run completes");
        let stats = e.gpu().stats();
        let ledger = e.traffic_ledger().expect("attribution is on");

        let (mut h2d, mut d2h, mut host_load) = (0u64, 0u64, 0u64);
        for cell in ledger.cells() {
            h2d += cell.h2d_bytes;
            d2h += cell.d2h_bytes;
            host_load += cell.host_load_bytes;
            if cell.host_load_bytes > 0 {
                assert_eq!(
                    cell.tag, SHARED_TAG,
                    "{name}: host-tier decodes are shared infrastructure"
                );
            }
        }
        assert!(host_load > 0, "{name}: no host-load traffic attributed");
        assert_eq!(
            host_load, r.metrics.host_decode_bytes,
            "{name}: ledger host-load cells drift from the decode counter"
        );
        assert_eq!(
            ledger.host_load_bytes(),
            host_load,
            "{name}: ledger total disagrees with its own cells"
        );
        assert_eq!(h2d, stats.h2d_bytes(), "{name}: ledger H2D != device");
        assert_eq!(d2h, stats.d2h_bytes(), "{name}: ledger D2H != device");
        let report = ledger.report(4);
        assert_eq!(report.host_load_bytes, host_load);
        assert_eq!(report.h2d_bytes, stats.h2d_bytes());
    }
}
