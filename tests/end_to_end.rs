//! Cross-system integration tests: every engine in the workspace runs the
//! same workload with the same seed and must produce the *identical*
//! multiset of trajectories (counter-based RNG makes trajectories
//! schedule-independent). This is the repository's strongest correctness
//! oracle: LightTraffic under any scheduling policy, the Subway-like
//! baseline, the in-GPU-memory baseline, the multi-round baseline, and
//! both CPU engines all have to agree, bit for bit.

use lighttraffic::baselines::cpu;
use lighttraffic::baselines::ingpu::run_in_gpu_memory;
use lighttraffic::baselines::multiround::run_multi_round;
use lighttraffic::baselines::subway::{run_subway, SubwayConfig};
use lighttraffic::engine::algorithm::{
    PageRank, Ppr, SecondOrderWalk, UniformSampling, WalkAlgorithm, WeightedWalk,
};
use lighttraffic::engine::{EngineConfig, LightTraffic, ReshuffleMode, ZeroCopyPolicy};
use lighttraffic::gpusim::GpuConfig;
use lighttraffic::graph::gen::{rmat, with_random_weights, RmatParams};
use lighttraffic::graph::Csr;
use std::sync::Arc;

const SEED: u64 = 42;

fn graph() -> Arc<Csr> {
    Arc::new(
        rmat(RmatParams {
            scale: 11,
            edge_factor: 8,
            seed: 17,
            ..RmatParams::default()
        })
        .csr,
    )
}

fn lt_visits(
    g: &Arc<Csr>,
    alg: &Arc<dyn WalkAlgorithm>,
    walks: u64,
    cfg: EngineConfig,
) -> Vec<u64> {
    let mut e = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("fits");
    e.run(walks)
        .expect("completes")
        .visit_counts
        .expect("tracked")
}

#[test]
fn every_system_produces_identical_pagerank_visits() {
    let g = graph();
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(12, 0.15));
    let walks = 3_000u64;

    let reference = cpu::run_walk_centric(&g, &alg, walks, SEED, 1)
        .visits
        .unwrap();

    // LightTraffic, several policy corners.
    let configs = [
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::baseline(16 << 10, 4)
        },
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
        EngineConfig {
            batch_capacity: 100,
            seed: SEED,
            zero_copy: ZeroCopyPolicy::Always,
            reshuffle: ReshuffleMode::DirectWrite,
            ..EngineConfig::baseline(64 << 10, 2)
        },
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        assert_eq!(
            lt_visits(&g, &alg, walks, cfg),
            reference,
            "LightTraffic config {i} diverged"
        );
    }

    // Subway-like.
    let sub = run_subway(
        &g,
        &alg,
        walks,
        &SubwayConfig {
            seed: SEED,
            ..Default::default()
        },
    );
    assert_eq!(sub.visits.unwrap(), reference, "subway diverged");

    // In-GPU-memory.
    let ig = run_in_gpu_memory(&g, &alg, walks, GpuConfig::default(), SEED).unwrap();
    assert_eq!(ig.visits.unwrap(), reference, "in-gpu diverged");

    // Multi-round.
    let mr = run_multi_round(
        g.clone(),
        alg.clone(),
        walks,
        4,
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
    )
    .unwrap();
    assert_eq!(mr.visit_counts.unwrap(), reference, "multi-round diverged");

    // Second CPU engine.
    let fm = cpu::run_shuffle_sorted(&g, &alg, walks, SEED);
    assert_eq!(fm.visits.unwrap(), reference, "shuffle-sorted diverged");
}

#[test]
fn ppr_single_source_agrees_across_systems() {
    let g = graph();
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(Ppr::from_highest_degree(&g, 0.2));
    let walks = 4_000u64;
    let reference = cpu::run_walk_centric(&g, &alg, walks, SEED, 2)
        .visits
        .unwrap();
    let lt = lt_visits(
        &g,
        &alg,
        walks,
        EngineConfig {
            batch_capacity: 128,
            seed: SEED,
            ..EngineConfig::light_traffic(8 << 10, 6)
        },
    );
    assert_eq!(lt, reference);
    let sub = run_subway(
        &g,
        &alg,
        walks,
        &SubwayConfig {
            seed: SEED,
            ..Default::default()
        },
    );
    assert_eq!(sub.visits.unwrap(), reference);
}

#[test]
fn uniform_walks_conserve_steps_everywhere() {
    let g = graph();
    let len = 16u32;
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(len));
    let walks = 2_000u64;
    let expect = walks * len as u64;
    let mut e = LightTraffic::new(
        g.clone(),
        alg.clone(),
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
    )
    .unwrap();
    let lt = e.run(walks).unwrap();
    assert_eq!(lt.metrics.total_steps, expect);
    assert_eq!(lt.metrics.finished_walks, walks);
    let c1 = cpu::run_walk_centric(&g, &alg, walks, SEED, 2);
    assert_eq!(c1.metrics.total_steps, expect);
    let c2 = cpu::run_shuffle_sorted(&g, &alg, walks, SEED);
    assert_eq!(c2.metrics.total_steps, expect);
    let ig = run_in_gpu_memory(&g, &alg, walks, GpuConfig::default(), SEED).unwrap();
    assert_eq!(ig.metrics.total_steps, expect);
    let sub = run_subway(
        &g,
        &alg,
        walks,
        &SubwayConfig {
            seed: SEED,
            ..Default::default()
        },
    );
    assert_eq!(sub.metrics.total_steps, expect);
}

#[test]
fn weighted_walks_run_out_of_memory_and_agree_with_cpu() {
    let g = Arc::new(with_random_weights(&graph(), 5));
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(WeightedWalk::new(10));
    let walks = 1_000u64;
    let mut e = LightTraffic::new(
        g.clone(),
        alg.clone(),
        EngineConfig {
            batch_capacity: 128,
            seed: SEED,
            ..EngineConfig::light_traffic(32 << 10, 3)
        },
    )
    .unwrap();
    let lt = e.run(walks).unwrap();
    assert_eq!(lt.metrics.finished_walks, walks);
    let c = cpu::run_walk_centric(&g, &alg, walks, SEED, 1);
    assert_eq!(c.metrics.total_steps, lt.metrics.total_steps);
}

#[test]
fn second_order_walks_complete_under_all_policies() {
    let g = graph();
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(SecondOrderWalk::new(12, 0.5));
    for cfg in [
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::baseline(16 << 10, 4)
        },
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
    ] {
        let mut e = LightTraffic::new(g.clone(), alg.clone(), cfg).unwrap();
        let r = e.run(1_500).unwrap();
        assert_eq!(r.metrics.finished_walks, 1_500);
        assert_eq!(r.metrics.total_steps, 1_500 * 12);
    }
    // Second-order trajectories are also schedule-independent because the
    // previous vertex travels with the walker.
    let a = {
        let mut e = LightTraffic::new(
            g.clone(),
            alg.clone(),
            EngineConfig {
                batch_capacity: 64,
                seed: SEED,
                ..EngineConfig::baseline(8 << 10, 2)
            },
        )
        .unwrap();
        e.run(1_500).unwrap().metrics.total_steps
    };
    let b = cpu::run_walk_centric(&g, &alg, 1_500, SEED, 2)
        .metrics
        .total_steps;
    assert_eq!(a, b);
}

#[test]
fn results_are_reproducible_across_runs() {
    let g = graph();
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(10, 0.15));
    let run = || {
        let mut e = LightTraffic::new(
            g.clone(),
            alg.clone(),
            EngineConfig {
                batch_capacity: 256,
                seed: SEED,
                ..EngineConfig::light_traffic(16 << 10, 4)
            },
        )
        .unwrap();
        e.run(2_000).unwrap()
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.visit_counts, r2.visit_counts);
    assert_eq!(r1.metrics.total_steps, r2.metrics.total_steps);
    // The simulated timeline is deterministic too (0% relative stddev).
    assert_eq!(r1.metrics.makespan_ns, r2.metrics.makespan_ns);
    assert_eq!(r1.metrics.iterations, r2.metrics.iterations);
}

#[test]
fn recorded_paths_are_valid_walks() {
    let g = graph();
    let len = 9u32;
    let mut e = LightTraffic::new(
        g.clone(),
        Arc::new(UniformSampling::new(len)),
        EngineConfig {
            batch_capacity: 128,
            seed: SEED,
            record_paths: true,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
    )
    .unwrap();
    let walks = 800u64;
    let r = e.run(walks).unwrap();
    let paths = r.paths.expect("paths recorded");
    assert_eq!(paths.len(), walks as usize);
    for (id, path) in paths.iter().enumerate() {
        // Start vertex + one entry per step.
        assert_eq!(path.len(), 1 + len as usize, "walk {id}");
        assert_eq!(path[0], (id as u64 % g.num_vertices()) as u32);
        // Every hop follows a real edge.
        for hop in path.windows(2) {
            assert!(
                g.neighbors(hop[0]).contains(&hop[1]),
                "walk {id}: {} -> {} is not an edge",
                hop[0],
                hop[1]
            );
        }
    }
}

#[test]
fn visit_scores_normalize() {
    let g = graph();
    let mut e = LightTraffic::new(
        g,
        Arc::new(PageRank::new(10, 0.15)),
        EngineConfig {
            batch_capacity: 256,
            seed: SEED,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
    )
    .unwrap();
    let r = e.run(2_000).unwrap();
    let scores = r.visit_scores().unwrap();
    let sum: f64 = scores.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
}

#[test]
fn pipeline_genuinely_overlaps_transfer_and_compute() {
    // Figure 8's point, asserted: with the full pipeline, the makespan is
    // well below the sum of all busy time, and in the transfer-bound
    // regime it approaches max(transfer, compute) rather than their sum.
    let g = graph();
    let mut e = LightTraffic::new(
        g.clone(),
        Arc::new(UniformSampling::new(30)),
        EngineConfig {
            batch_capacity: 128,
            seed: SEED,
            gpu: GpuConfig {
                record_ops: true,
                ..GpuConfig::default()
            },
            ..EngineConfig::light_traffic(8 << 10, 6)
        },
    )
    .unwrap();
    let r = e.run(2 * g.num_vertices()).unwrap();
    let transfer = r.gpu.transmission_ns();
    let compute = r.gpu.computing_ns();
    let serial = transfer + compute;
    let overlapped = r.metrics.makespan_ns;
    assert!(
        overlapped < serial,
        "pipeline must overlap: makespan {overlapped} vs serial {serial}"
    );
    // The trace exporter handles a full engine run.
    let trace = lighttraffic::gpusim::trace::to_chrome_trace(&e.gpu().op_log());
    let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
    assert!(parsed.as_array().unwrap().len() > 10);
}

#[test]
fn repeated_runs_do_not_corrupt_recorded_paths() {
    let g = graph();
    let len = 6u32;
    let mut e = LightTraffic::new(
        g.clone(),
        Arc::new(UniformSampling::new(len)),
        EngineConfig {
            batch_capacity: 128,
            seed: SEED,
            record_paths: true,
            ..EngineConfig::light_traffic(16 << 10, 4)
        },
    )
    .unwrap();
    e.run(300).unwrap();
    let r2 = e.run(300).unwrap();
    // Ids restart at 0 each run: the second run's paths must replace the
    // first run's, not append to them.
    for path in r2.paths.unwrap() {
        assert_eq!(path.len(), 1 + len as usize);
    }
}
