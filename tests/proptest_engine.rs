//! Property-based tests of the engine and simulator: arbitrary graphs ×
//! arbitrary pool configurations × arbitrary scheduling policies must all
//! (a) complete every walk, (b) produce the reference trajectories, and
//! (c) keep the simulated timeline physically consistent — DESIGN.md
//! invariants 3–6.
//!
//! Generators live in [`common`] and are shared with `proptest_graph`
//! and `differential`.

mod common;

use common::{config_strategy, graph_strategy, to_engine_config};
use lighttraffic::baselines::cpu;
use lighttraffic::engine::algorithm::{PageRank, UniformSampling, WalkAlgorithm};
use lighttraffic::engine::{LightTraffic, RunStatus};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any configuration completes the workload, matches the CPU reference
    /// trajectories, and leaves a physically consistent timeline.
    #[test]
    fn engine_is_correct_under_any_config(g in graph_strategy(), c in config_strategy()) {
        let walks = g.num_vertices().min(2000);
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(8, 0.15));
        let cfg = to_engine_config(&c, &g);
        let mut engine = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("pools fit");
        let r = engine.run(walks).expect("run completes");

        // (a) Completion and conservation.
        prop_assert_eq!(r.metrics.finished_walks, walks);
        let visits = r.visit_counts.clone().unwrap();
        prop_assert_eq!(visits.iter().sum::<u64>(), r.metrics.total_steps);

        // (b) Schedule equivalence against the plain CPU reference.
        let reference = cpu::run_walk_centric(&g, &alg, walks, 42, 1)
            .visits
            .unwrap();
        prop_assert_eq!(visits, reference);

        // (c) Timeline sanity: ops on one engine never overlap; makespan
        // is the latest completion; stats match the op log.
        let log = engine.gpu().op_log();
        for e in 0..3 {
            let mut ops: Vec<_> = log.iter().filter(|o| o.engine == e).collect();
            ops.sort_by_key(|o| (o.start, o.end));
            for w in ops.windows(2) {
                prop_assert!(w[1].start >= w[0].end, "engine {e} overlap");
            }
        }
        let max_end = log.iter().map(|o| o.end).max().unwrap_or(0);
        prop_assert!(r.metrics.makespan_ns >= max_end);
        // Zero-copy policy extremes behave as declared.
        match c.zero_copy {
            0 => prop_assert_eq!(r.metrics.zero_copy_kernels, 0),
            1 => prop_assert_eq!(r.metrics.explicit_graph_copies, 0),
            _ => {}
        }
    }

    /// Fixed-length workloads take exactly `walks × length` steps under
    /// any configuration (no dead ends survive preprocessing).
    #[test]
    fn fixed_length_step_count_is_exact(g in graph_strategy(), c in config_strategy()) {
        let walks = g.num_vertices().min(1500);
        let len = 6u32;
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(len));
        let cfg = to_engine_config(&c, &g);
        let mut engine = LightTraffic::new(g.clone(), alg, cfg).expect("pools fit");
        let r = engine.run(walks).expect("run completes");
        prop_assert_eq!(r.metrics.total_steps, walks * len as u64);
        // Traffic accounting sanity: bytes flowed iff copies happened.
        prop_assert_eq!(r.gpu.graph_load.count == 0, r.gpu.graph_load.bytes == 0);
        prop_assert_eq!(r.gpu.walk_evict.count == 0, r.gpu.walk_evict.bytes == 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint → restore round-trip from an arbitrary pause point
    /// reproduces the uninterrupted run bit-identically — on the sharded
    /// pool, under any configuration (thread counts included). The pause
    /// lands between scheduler iterations, i.e. after reshuffles have
    /// scattered walkers across the shards, so the snapshot exercises the
    /// sharded walk index, not just a fresh pool.
    #[test]
    fn checkpoint_restore_round_trip_is_bit_identical(
        g in graph_strategy(),
        c in config_strategy(),
        pause in 1u64..24,
    ) {
        let walks = g.num_vertices().min(1500);
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(10, 0.15));

        let reference = {
            let cfg = to_engine_config(&c, &g);
            let mut e = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("pools fit");
            e.run(walks).expect("run completes")
        };

        let cp = {
            let cfg = to_engine_config(&c, &g);
            let mut e = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("pools fit");
            e.inject(alg.initial_walkers(&g, walks));
            match e.run_at_most(pause).expect("partial run completes") {
                RunStatus::Paused => {}
                // The workload finished inside the budget: nothing left to
                // checkpoint, the property is vacuous for this sample.
                RunStatus::Completed(_) => return Ok(()),
                other => panic!("unexpected run status: {other:?}"),
            }
            e.checkpoint()
        };
        prop_assert!(cp.active_walks() > 0);
        // The snapshot reflects the sharded device pool: one occupancy
        // entry per shard, totals bounded by the in-flight population.
        prop_assert!(!cp.shard_walkers.is_empty());
        prop_assert!(cp.shard_walkers.iter().sum::<u64>() <= cp.active_walks());

        // JSON round-trip, then resume on a brand-new engine.
        let json = serde_json::to_string(&cp).expect("checkpoint serializes");
        let restored: lighttraffic::engine::Checkpoint =
            serde_json::from_str(&json).expect("checkpoint round-trips");
        let resumed = {
            let cfg = to_engine_config(&c, &g);
            let mut e = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("pools fit");
            e.resume(restored).expect("resume completes")
        };

        prop_assert_eq!(resumed.metrics.finished_walks, reference.metrics.finished_walks);
        prop_assert_eq!(resumed.metrics.total_steps, reference.metrics.total_steps);
        prop_assert_eq!(resumed.visit_counts, reference.visit_counts);
    }
}
