//! Property-based tests of the engine and simulator: arbitrary graphs ×
//! arbitrary pool configurations × arbitrary scheduling policies must all
//! (a) complete every walk, (b) produce the reference trajectories, and
//! (c) keep the simulated timeline physically consistent — DESIGN.md
//! invariants 3–6.

use lighttraffic::baselines::cpu;
use lighttraffic::engine::algorithm::{PageRank, UniformSampling, WalkAlgorithm};
use lighttraffic::engine::{EngineConfig, LightTraffic, ReshuffleMode, ZeroCopyPolicy};
use lighttraffic::gpusim::GpuConfig;
use lighttraffic::graph::gen::{erdos_renyi, rmat, RmatParams};
use lighttraffic::graph::Csr;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct ArbConfig {
    partition_kb: u64,
    graph_pool: usize,
    batch_capacity: usize,
    preemptive: bool,
    selective: bool,
    zero_copy: u8,
    direct_reshuffle: bool,
    tight_walk_pool: bool,
    kernel_threads: usize,
}

fn config_strategy() -> impl Strategy<Value = ArbConfig> {
    (
        4u64..64,
        1usize..8,
        8usize..512,
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        any::<bool>(),
        any::<bool>(),
        0usize..5,
    )
        .prop_map(
            |(
                partition_kb,
                graph_pool,
                batch_capacity,
                preemptive,
                selective,
                zero_copy,
                direct_reshuffle,
                tight_walk_pool,
                kernel_threads,
            )| ArbConfig {
                partition_kb,
                graph_pool,
                batch_capacity,
                preemptive,
                selective,
                zero_copy,
                direct_reshuffle,
                tight_walk_pool,
                kernel_threads,
            },
        )
}

fn graph_strategy() -> impl Strategy<Value = Arc<Csr>> {
    (8u32..12, 4u32..12, 0u64..1000, any::<bool>()).prop_map(|(scale, ef, seed, skewed)| {
        Arc::new(if skewed {
            rmat(RmatParams {
                scale,
                edge_factor: ef,
                seed,
                ..RmatParams::default()
            })
            .csr
        } else {
            erdos_renyi(1 << scale, (1u64 << scale) * ef as u64, seed).csr
        })
    })
}

fn to_engine_config(c: &ArbConfig, g: &Arc<Csr>) -> EngineConfig {
    let partition_bytes = c.partition_kb << 10;
    let p = lighttraffic::graph::PartitionedGraph::build(g.clone(), partition_bytes)
        .num_partitions() as usize;
    EngineConfig {
        partition_bytes,
        batch_capacity: c.batch_capacity,
        graph_pool_blocks: c.graph_pool,
        walk_pool_blocks: if c.tight_walk_pool {
            Some(2 * p + 1)
        } else {
            None
        },
        seed: 42,
        preemptive: c.preemptive,
        selective: c.selective,
        zero_copy: match c.zero_copy {
            0 => ZeroCopyPolicy::Never,
            1 => ZeroCopyPolicy::Always,
            _ => ZeroCopyPolicy::adaptive(),
        },
        reshuffle: if c.direct_reshuffle {
            ReshuffleMode::DirectWrite
        } else {
            ReshuffleMode::default()
        },
        record_iterations: false,
        record_paths: false,
        gpu: GpuConfig {
            record_ops: true,
            ..GpuConfig::default()
        },
        max_iterations: 10_000_000,
        kernel_threads: c.kernel_threads,
        checkpoint_every: None,
        copy_retries: 3,
        retry_backoff_ns: 200_000,
        corruption_degrade_threshold: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any configuration completes the workload, matches the CPU reference
    /// trajectories, and leaves a physically consistent timeline.
    #[test]
    fn engine_is_correct_under_any_config(g in graph_strategy(), c in config_strategy()) {
        let walks = g.num_vertices().min(2000);
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(8, 0.15));
        let cfg = to_engine_config(&c, &g);
        let mut engine = LightTraffic::new(g.clone(), alg.clone(), cfg).expect("pools fit");
        let r = engine.run(walks).expect("run completes");

        // (a) Completion and conservation.
        prop_assert_eq!(r.metrics.finished_walks, walks);
        let visits = r.visit_counts.clone().unwrap();
        prop_assert_eq!(visits.iter().sum::<u64>(), r.metrics.total_steps);

        // (b) Schedule equivalence against the plain CPU reference.
        let reference = cpu::run_walk_centric(&g, &alg, walks, 42, 1)
            .visits
            .unwrap();
        prop_assert_eq!(visits, reference);

        // (c) Timeline sanity: ops on one engine never overlap; makespan
        // is the latest completion; stats match the op log.
        let log = engine.gpu().op_log();
        for e in 0..3 {
            let mut ops: Vec<_> = log.iter().filter(|o| o.engine == e).collect();
            ops.sort_by_key(|o| (o.start, o.end));
            for w in ops.windows(2) {
                prop_assert!(w[1].start >= w[0].end, "engine {e} overlap");
            }
        }
        let max_end = log.iter().map(|o| o.end).max().unwrap_or(0);
        prop_assert!(r.metrics.makespan_ns >= max_end);
        // Zero-copy policy extremes behave as declared.
        match c.zero_copy {
            0 => prop_assert_eq!(r.metrics.zero_copy_kernels, 0),
            1 => prop_assert_eq!(r.metrics.explicit_graph_copies, 0),
            _ => {}
        }
    }

    /// Fixed-length workloads take exactly `walks × length` steps under
    /// any configuration (no dead ends survive preprocessing).
    #[test]
    fn fixed_length_step_count_is_exact(g in graph_strategy(), c in config_strategy()) {
        let walks = g.num_vertices().min(1500);
        let len = 6u32;
        let alg: Arc<dyn WalkAlgorithm> = Arc::new(UniformSampling::new(len));
        let cfg = to_engine_config(&c, &g);
        let mut engine = LightTraffic::new(g.clone(), alg, cfg).expect("pools fit");
        let r = engine.run(walks).expect("run completes");
        prop_assert_eq!(r.metrics.total_steps, walks * len as u64);
        // Traffic accounting sanity: bytes flowed iff copies happened.
        prop_assert_eq!(r.gpu.graph_load.count == 0, r.gpu.graph_load.bytes == 0);
        prop_assert_eq!(r.gpu.walk_evict.count == 0, r.gpu.walk_evict.bytes == 0);
    }
}
