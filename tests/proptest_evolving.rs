//! Property tests of the evolving-graph layer (DESIGN.md §15): arbitrary
//! interleavings of bounded run slices, epoch seals carrying arbitrary
//! insert/delete schedules, overlay compactions, and checkpoint/restore —
//! under arbitrary engine configurations.
//!
//! Two invariants are pinned:
//!
//! 1. **Compaction transparency**: dropping (or keeping) every compaction
//!    in an interleaving changes nothing a walk or the simulated device
//!    can observe — compaction only moves the sealed adjacency between
//!    storage forms.
//! 2. **Epoch-pinned replay**: a checkpoint taken at epoch E replays
//!    identically on a fresh engine brought to the same epoch, no matter
//!    what mutations the original engine sealed afterwards; and it refuses
//!    to load at the wrong epoch.

mod common;

use common::{
    config_strategy, graph_strategy, materialize_update, raw_updates_strategy, to_engine_config,
    ArbConfig, RawUpdate,
};
use lighttraffic::engine::algorithm::{PageRank, WalkAlgorithm};
use lighttraffic::engine::{EngineError, LightTraffic, RunResult, RunStatus, Session};
use lighttraffic::graph::Csr;
use proptest::prelude::*;
use std::sync::Arc;

/// One step of an evolving-run interleaving. Every variant executes at a
/// scheduler-iteration barrier (between `Session::step` slices), the only
/// place mutation visibility is deterministic.
#[derive(Clone, Debug)]
enum EvolveOp {
    /// Run at most this many scheduler iterations.
    Slice(u64),
    /// Buffer a mutation schedule and seal it as one epoch.
    Seal(Vec<RawUpdate>),
    /// Fold the overlay into a fresh base CSR.
    Compact,
}

fn ops_strategy() -> impl Strategy<Value = Vec<EvolveOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..6).prop_map(EvolveOp::Slice),
            raw_updates_strategy(24).prop_map(EvolveOp::Seal),
            Just(EvolveOp::Compact),
        ],
        1..12,
    )
}

/// Trajectory-and-traffic fingerprint of a finished run. Host wall-clock
/// and compaction bookkeeping are excluded by construction: only fields a
/// compaction or checkpoint could never legitimately change are compared.
type Fingerprint = (Option<Vec<u64>>, u64, u64, u64, u64, u64, u64);

fn fingerprint(r: &RunResult) -> Fingerprint {
    (
        r.visit_counts.clone(),
        r.metrics.total_steps,
        r.metrics.finished_walks,
        r.metrics.makespan_ns,
        r.gpu.h2d_bytes(),
        r.gpu.d2h_bytes(),
        r.gpu.reload_bytes(),
    )
}

fn session(g: &Arc<Csr>, c: &ArbConfig, walks: u64) -> Session {
    let alg: Arc<dyn WalkAlgorithm> = Arc::new(PageRank::new(8, 0.15));
    let mut s = LightTraffic::session(g.clone(), alg, to_engine_config(c, g)).expect("pools fit");
    s.inject_walks(walks);
    s
}

/// Drive `ops` (honoring or skipping the compactions) and drain. A seal
/// can legitimately fail terminally when inserts grow a partition past
/// the block size under `ZeroCopyPolicy::Never`; the error message is the
/// result then — both arms of a comparison must agree on it.
fn run_ops(
    g: &Arc<Csr>,
    c: &ArbConfig,
    walks: u64,
    ops: &[EvolveOp],
    honor_compactions: bool,
) -> Result<Fingerprint, String> {
    let mut s = session(g, c, walks);
    for op in ops {
        match op {
            EvolveOp::Slice(budget) => {
                s.step(*budget).map_err(|e| e.to_string())?;
            }
            EvolveOp::Seal(raw) => {
                let updates = raw.iter().map(|r| materialize_update(r, g)).collect();
                s.mutate(updates).map_err(|e| e.to_string())?;
                s.seal_epoch().map_err(|e| e.to_string())?;
            }
            EvolveOp::Compact => {
                if honor_compactions {
                    s.compact();
                }
            }
        }
    }
    match s.step(u64::MAX).map_err(|e| e.to_string())? {
        RunStatus::Completed(r) => Ok(fingerprint(&r)),
        other => unreachable!("unbounded step cannot pause: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: compacting at arbitrary points of an arbitrary
    /// interleaving never changes walk output, the simulated clock, or
    /// any traffic direction — including the reload bytes of subsequent
    /// dirty seals.
    #[test]
    fn compaction_at_any_epoch_is_transparent(
        g in graph_strategy(),
        c in config_strategy(),
        ops in ops_strategy(),
    ) {
        let walks = g.num_vertices().min(800);
        let with = run_ops(&g, &c, walks, &ops, true);
        let without = run_ops(&g, &c, walks, &ops, false);
        prop_assert_eq!(with, without, "compaction placement leaked into results");
    }

    /// Invariant 2: a checkpoint taken mid-flight at epoch E is a pure
    /// value — later seals on the originating engine do not disturb it —
    /// and replays identically on a fresh engine replaying the same
    /// epoch-E graph history, while an engine at the wrong epoch refuses
    /// it outright.
    #[test]
    fn checkpoints_are_epoch_pinned_and_replay_invariant(
        g in graph_strategy(),
        c in config_strategy(),
        prefix in prop::collection::vec(raw_updates_strategy(16), 0..4),
        later in raw_updates_strategy(16),
        pause in 1u64..16,
    ) {
        let walks = g.num_vertices().min(800);

        // Bring a session to epoch E = prefix.len() with walks in flight.
        let advance = |s: &mut Session| -> Result<(), String> {
            for raw in &prefix {
                let updates = raw.iter().map(|r| materialize_update(r, &g)).collect();
                s.mutate(updates).map_err(|e| e.to_string())?;
                s.seal_epoch().map_err(|e| e.to_string())?;
            }
            Ok(())
        };

        let mut a = session(&g, &c, walks);
        if advance(&mut a).is_err() {
            // Oversized-partition seal under ZeroCopyPolicy::Never: a
            // terminal condition covered elsewhere; vacuous here.
            return Ok(());
        }
        match a.step(pause).map_err(|e| e.to_string()).unwrap() {
            RunStatus::Paused => {}
            // Finished inside the budget: nothing in flight to pin.
            _ => return Ok(()),
        }
        let cp = a.checkpoint();
        prop_assert_eq!(cp.epoch, prefix.len() as u64);
        let frozen = serde_json::to_string(&cp).expect("checkpoint serializes");

        // The original engine seals more mutations and finishes; the
        // checkpoint value must not move.
        let updates: Vec<_> = later.iter().map(|r| materialize_update(r, &g)).collect();
        if a.mutate(updates).and_then(|_| a.seal_epoch()).is_ok() {
            let _ = a.step(u64::MAX);
        }
        prop_assert_eq!(
            serde_json::to_string(&cp).unwrap(),
            frozen.clone(),
            "later mutations reached into a taken checkpoint"
        );

        // Replay on fresh engines at the same epoch: bit-identical runs.
        let replay = || -> Result<Fingerprint, String> {
            let mut b = session(&g, &c, 0);
            advance(&mut b)?;
            let cp = serde_json::from_str(&frozen).expect("checkpoint deserializes");
            b.restore(cp).map_err(|e| e.to_string())?;
            match b.step(u64::MAX).map_err(|e| e.to_string())? {
                RunStatus::Completed(r) => Ok(fingerprint(&r)),
                other => unreachable!("unbounded step cannot pause: {other:?}"),
            }
        };
        prop_assert_eq!(replay(), replay(), "epoch-E replay is nondeterministic");

        // The wrong epoch is refused, not silently accepted.
        if !prefix.is_empty() {
            let mut wrong = session(&g, &c, 0);
            let cp = serde_json::from_str(&frozen).expect("checkpoint deserializes");
            match wrong.restore(cp) {
                Err(EngineError::EpochMismatch { checkpoint, engine }) => {
                    prop_assert_eq!(checkpoint, prefix.len() as u64);
                    prop_assert_eq!(engine, 0);
                }
                other => return Err(TestCaseError::fail(format!(
                    "stale-epoch restore must fail with EpochMismatch, got {other:?}"
                ))),
            }
        }
    }
}
