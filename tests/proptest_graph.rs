//! Property-based tests of the graph substrate: the builder's
//! preprocessing, CSR structure, the range partitioner's invariants, and
//! binary serialization — DESIGN.md invariants 1, 2 and 7.
//!
//! Generators live in [`common`] and are shared with `proptest_engine`
//! and `differential`.

mod common;

use common::{build_csr, edges_strategy};
use lighttraffic::graph::{io, PartitionedGraph};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn preprocessing_invariants(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else {
            // Every edge was a self loop: Empty error is correct.
            prop_assert!(edges.iter().all(|(s, d)| s == d));
            return Ok(());
        };
        for v in 0..g.num_vertices() as u32 {
            let nbrs = g.neighbors(v);
            // No zero-degree vertices survive.
            prop_assert!(!nbrs.is_empty());
            // No self loops, sorted, deduped.
            prop_assert!(!nbrs.contains(&v));
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            // Undirected symmetry.
            for &u in nbrs {
                prop_assert!(g.neighbors(u).binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn builder_preserves_connectivity_of_inputs(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        // The number of (undirected, non-loop, unique) input edges equals
        // half the CSR's directed edge count.
        let unique: HashSet<(u32, u32)> = edges
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| (s.min(d), s.max(d)))
            .collect();
        prop_assert_eq!(g.num_edges(), 2 * unique.len() as u64);
    }

    #[test]
    fn partitioner_invariants(edges in edges_strategy(), budget in 64u64..4096) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        let g = Arc::new(g);
        let pg = PartitionedGraph::build(g.clone(), budget);
        // Disjoint cover of the vertex space.
        let mut next = 0u32;
        for p in 0..pg.num_partitions() {
            let r = pg.vertex_range(p);
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start);
            next = r.end;
        }
        prop_assert_eq!(next as u64, g.num_vertices());
        // Lookup agrees with ranges.
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(pg.vertex_range(pg.partition_of(v)).contains(&v));
        }
        // Budget respected by all multi-vertex partitions; byte table
        // matches the materialized size; neighbors preserved.
        for p in 0..pg.num_partitions() {
            if pg.num_vertices_in(p) > 1 {
                prop_assert!(pg.partition_bytes(p) <= budget);
            } else {
                prop_assert!(pg.oversized_partitions().contains(&p)
                    || pg.partition_bytes(p) <= budget);
            }
            let data = pg.extract(p);
            prop_assert_eq!(data.bytes(), pg.partition_bytes(p));
            for v in data.v_start..data.v_end {
                prop_assert_eq!(data.neighbors(v), g.neighbors(v));
            }
        }
        // Edge counts sum to the total.
        let sum: u64 = (0..pg.num_partitions()).map(|p| pg.num_edges_in(p)).sum();
        prop_assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn binary_roundtrip_is_lossless(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        let dir = std::env::temp_dir().join("lt_proptest_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{}.bin", std::process::id()));
        io::write_binary(&g, &path).unwrap();
        let g2 = io::read_binary(&path).unwrap();
        prop_assert_eq!(g.offsets(), g2.offsets());
        prop_assert_eq!(g.edges(), g2.edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_bytes_matches_formula(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        prop_assert_eq!(
            g.csr_bytes(),
            (g.num_vertices() + 1) * 8 + g.num_edges() * 4
        );
    }
}
