//! Property-based tests of the graph substrate: the builder's
//! preprocessing, CSR structure, the range partitioner's invariants, and
//! binary serialization — DESIGN.md invariants 1, 2 and 7.
//!
//! Generators live in [`common`] and are shared with `proptest_engine`
//! and `differential`.

mod common;

use common::{build_csr, edges_strategy};
use lighttraffic::graph::gen::{with_random_timestamps, with_random_weights};
use lighttraffic::graph::oocore::write_oocore;
use lighttraffic::graph::{io, OocGraph, PartitionedGraph};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn preprocessing_invariants(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else {
            // Every edge was a self loop: Empty error is correct.
            prop_assert!(edges.iter().all(|(s, d)| s == d));
            return Ok(());
        };
        for v in 0..g.num_vertices() as u32 {
            let nbrs = g.neighbors(v);
            // No zero-degree vertices survive.
            prop_assert!(!nbrs.is_empty());
            // No self loops, sorted, deduped.
            prop_assert!(!nbrs.contains(&v));
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            // Undirected symmetry.
            for &u in nbrs {
                prop_assert!(g.neighbors(u).binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn builder_preserves_connectivity_of_inputs(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        // The number of (undirected, non-loop, unique) input edges equals
        // half the CSR's directed edge count.
        let unique: HashSet<(u32, u32)> = edges
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| (s.min(d), s.max(d)))
            .collect();
        prop_assert_eq!(g.num_edges(), 2 * unique.len() as u64);
    }

    #[test]
    fn partitioner_invariants(edges in edges_strategy(), budget in 64u64..4096) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        let g = Arc::new(g);
        let pg = PartitionedGraph::build(g.clone(), budget);
        // Disjoint cover of the vertex space.
        let mut next = 0u32;
        for p in 0..pg.num_partitions() {
            let r = pg.vertex_range(p);
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start);
            next = r.end;
        }
        prop_assert_eq!(next as u64, g.num_vertices());
        // Lookup agrees with ranges.
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(pg.vertex_range(pg.partition_of(v)).contains(&v));
        }
        // Budget respected by all multi-vertex partitions; byte table
        // matches the materialized size; neighbors preserved.
        for p in 0..pg.num_partitions() {
            if pg.num_vertices_in(p) > 1 {
                prop_assert!(pg.partition_bytes(p) <= budget);
            } else {
                prop_assert!(pg.oversized_partitions().contains(&p)
                    || pg.partition_bytes(p) <= budget);
            }
            let data = pg.extract(p);
            prop_assert_eq!(data.bytes(), pg.partition_bytes(p));
            for v in data.v_start..data.v_end {
                prop_assert_eq!(data.neighbors(v), g.neighbors(v));
            }
        }
        // Edge counts sum to the total.
        let sum: u64 = (0..pg.num_partitions()).map(|p| pg.num_edges_in(p)).sum();
        prop_assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn binary_roundtrip_is_lossless(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        let dir = std::env::temp_dir().join("lt_proptest_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{}.bin", std::process::id()));
        io::write_binary(&g, &path).unwrap();
        let g2 = io::read_binary(&path).unwrap();
        prop_assert_eq!(g.offsets(), g2.offsets());
        prop_assert_eq!(g.edges(), g2.edges());
        std::fs::remove_file(&path).ok();
    }

    /// Both persistent substrates — the uncompressed `DiskGraph` and the
    /// delta+varint compressed out-of-core file — reproduce every
    /// partition of every graph flavor (plain / weighted / temporal)
    /// bit-for-bit: each store's per-partition read equals the in-memory
    /// `extract`, field by field, at an arbitrary partition budget.
    #[test]
    fn disk_and_compressed_stores_extract_identically(
        edges in edges_strategy(),
        budget in 64u64..4096,
        seed in 0u64..1000,
    ) {
        let Some(plain) = build_csr(&edges) else { return Ok(()); };
        let weighted = with_random_weights(&plain, seed);
        let temporal = with_random_timestamps(&plain, seed, 16);
        for (flavor, g) in [("plain", plain), ("weighted", weighted), ("temporal", temporal)] {
            let pg = PartitionedGraph::build(Arc::new(g), budget);
            let dir = std::env::temp_dir();
            let base = format!("lt_proptest_stores_{}_{flavor}", std::process::id());
            let disk_path = dir.join(format!("{base}.ltp"));
            io::write_partitioned(&pg, &disk_path).unwrap();
            let mut disk = io::DiskGraph::open(&disk_path).unwrap();
            let ooc_path = dir.join(format!("{base}.ltg"));
            write_oocore(&pg, &ooc_path).unwrap();
            let ooc = OocGraph::open(&ooc_path).unwrap();
            prop_assert_eq!(ooc.num_partitions(), pg.num_partitions());
            for p in 0..pg.num_partitions() {
                let reference = pg.extract(p);
                let from_disk = disk.read_partition(p).unwrap();
                let decoded = ooc.decode_partition(p).unwrap();
                prop_assert_eq!(
                    &from_disk, &reference,
                    "DiskGraph {} partition {} diverged", flavor, p
                );
                prop_assert_eq!(
                    &decoded, &reference,
                    "compressed store {} partition {} diverged", flavor, p
                );
            }
            std::fs::remove_file(&disk_path).ok();
            std::fs::remove_file(&ooc_path).ok();
        }
    }

    #[test]
    fn csr_bytes_matches_formula(edges in edges_strategy()) {
        let Some(g) = build_csr(&edges) else { return Ok(()); };
        prop_assert_eq!(
            g.csr_bytes(),
            (g.num_vertices() + 1) * 8 + g.num_edges() * 4
        );
    }
}
