//! Minimal offline stand-in for `bytes`: the `Buf` / `BufMut` traits with
//! the little-endian accessors the workspace's binary graph format uses.
//! `Buf` is implemented for `&[u8]` (reading advances the slice) and
//! `BufMut` for `Vec<u8>`. Like the real crate, reads past the end panic.

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_le() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(42);
        v.put_f32_le(1.5);
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}
