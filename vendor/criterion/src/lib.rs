//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros — backed by a plain
//! wall-clock timing loop (short warmup, then enough iterations to cover
//! ~20 ms). No statistics, plots, or baselines; one line per benchmark is
//! printed with the mean time per iteration and derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), None, f);
        self
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Composite benchmark id (`name/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Benchmark group: shares a name prefix and reporting settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and single-shot estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Budget ~20 ms (or at least 3 runs) for the measured phase.
        let budget = Duration::from_millis(20);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(3, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F>(group: &str, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per = match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / (b.mean_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / (b.mean_ns / 1e9))
        }
        _ => String::new(),
    };
    println!("bench {label}: {:.1} ns/iter{per}", b.mean_ns);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_measures_something() {
        let mut c = super::Criterion::default();
        let mut g = c.benchmark_group("vendor_smoke");
        g.throughput(super::Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(super::black_box).sum::<u64>())
        });
        g.finish();
    }
}
