//! Minimal offline stand-in for `crossbeam`, backed by `std::thread::scope`
//! (stable since Rust 1.63).
//!
//! Only the scoped-thread API the workspace uses is provided:
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); ... })`. Unlike
//! crossbeam, panics in spawned threads propagate when the corresponding
//! `join()` is called (or at scope exit), and `scope` itself returns
//! `Ok(..)` unless the closure's own panic unwinds — which matches how the
//! call sites use `.unwrap()` / `.expect()` on the result.

pub mod thread {
    /// Scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle so
        /// it can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning scoped threads; all threads are joined
    /// before this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let r = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
