//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives and exposes parking_lot's non-poisoning
//! lock API (`lock()` returns the guard directly). A poisoned std lock is
//! recovered by taking the inner guard: the workspace holds locks only
//! around small, panic-free critical sections.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
