//! Minimal offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use: range strategies, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `any::<T>()`, `sample::Index`, and the `proptest!` /
//! `prop_assert*!` macros. Differences from the real crate:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   strategy's generated values living in scope at panic time) but is not
//!   minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   its module path and name, so runs are reproducible and CI-stable.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert*!` inside a test body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// SplitMix64 RNG driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Stable seed from the test's fully qualified name.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn next_below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe producing values of `Self::Value` from an RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.next_below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.next_below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start + rng.next_f64() as $t * (self.end - self.start)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + rng.next_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;

        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` == `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
            }
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            [$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(e) => {
                        ::std::panic!("case {} of {}: {}", __case, stringify!($name), e);
                    }
                }
            }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u32, Vec<u8>)> {
        (0u32..10, prop::collection::vec(0u8..255, 1..5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.5f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn composite_strategies_compose(pair in composite(), pick in any::<prop::sample::Index>()) {
            let (n, v) = pair;
            prop_assert!(n < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            let i = pick.index(v.len());
            prop_assert!(i < v.len());
        }

        #[test]
        fn oneof_covers_all_options(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn prop_map_applies(double in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(double % 2, 0);
            prop_assert_ne!(double, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
