//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods the workspace's graph generators use (`gen::<f64>()`,
//! `gen_range` over integer `Range`s and float `RangeInclusive`s). The
//! core generator is SplitMix64 — statistically fine for synthetic-graph
//! generation, deterministic given a seed, which is all the workspace
//! requires. The exact output stream differs from the real crate, so
//! generated stand-in graphs differ edge-for-edge from pre-vendoring runs
//! (no test depends on the exact stream).

pub mod rngs {
    /// Small, fast, seedable RNG (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble so that small consecutive seeds give unrelated streams.
        let mut rng = rngs::SmallRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        };
        rng.next_u64();
        rng
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u: $t = Standard::gen_from(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u: $t = Standard::gen_from(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_from(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            assert_eq!(x, b.gen_range(10u64..20));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            b.gen::<f64>();
            let w = a.gen_range(0.5f32..=2.0);
            assert!((0.5..=2.0).contains(&w));
            b.gen_range(0.5f32..=2.0);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 60)).collect();
        assert_ne!(av, bv);
    }
}
