//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! owned JSON tree: `Serialize` renders a [`Value`], `Deserialize` reads
//! one back. The vendored `serde_json` provides the text format on top.
//! This is slower than real serde but the workspace only serializes
//! experiment rows and checkpoints, where simplicity wins.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON value tree (also re-exported as `serde_json::Value`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// JSON object; BTreeMap matches real serde_json's default (sorted keys).
pub type Map = BTreeMap<String, Value>;

/// JSON number: distinguishes unsigned/signed/float like serde_json.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(x) => Some(x),
            Number::I(x) => u64::try_from(x).ok(),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(x) => i64::try_from(x).ok(),
            Number::I(x) => Some(x),
            Number::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(x) => Some(x as f64),
            Number::I(x) => Some(x as f64),
            Number::F(x) => Some(x),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            // Cross-variant integers compare numerically; floats compare
            // numerically with integers too (our printer writes integral
            // floats without a fraction, so round trips must still match).
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => match (self.as_f64(), other.as_f64()) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                },
            },
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact JSON rendering (same rules as `serde_json::to_string`).
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

pub fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::U(x) => write!(out, "{x}").unwrap(),
        Number::I(x) => write!(out, "{x}").unwrap(),
        Number::F(x) => {
            if x.is_finite() {
                // `{}` on f64 prints the shortest roundtrip form; integral
                // floats print without a fraction (JSON-legal, reparses as
                // an integer which compares numerically equal).
                write!(out, "{x}").unwrap();
            } else {
                out.push_str("null");
            }
        }
    }
}

pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|a| a.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Deserialization error (re-exported by `serde_json` as its `Error`).
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render self as a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild self from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-support helper: extract and convert a struct field. A missing
/// key deserializes as `Null` so `Option` fields tolerate omission.
pub fn field<T: Deserialize>(m: &Map, name: &str) -> Result<T, DeError> {
    let v = m.get(name).unwrap_or(&NULL_VALUE);
    T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}")))
}

/// Derive-support helper for `#[serde(default)]` fields: a missing key
/// yields `T::default()` instead of attempting a `Null` conversion, so
/// new fields stay backward compatible with documents written before
/// they existed.
pub fn field_or_default<T: Deserialize + Default>(m: &Map, name: &str) -> Result<T, DeError> {
    match m.get(name) {
        Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

// --- Serialize impls -------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Number(Number::U(x as u64))
                } else {
                    Value::Number(Number::I(x))
                }
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() {
                    Value::Number(Number::F(x))
                } else {
                    Value::Null
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for BTreeMap<&str, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// --- Deserialize impls -----------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_u64().ok_or_else(|| DeError::custom(
                    concat!("expected ", stringify!($t))))?;
                <$t>::try_from(x).map_err(|_| DeError::custom(
                    concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_i64().ok_or_else(|| DeError::custom(
                    concat!("expected ", stringify!($t))))?;
                <$t>::try_from(x).map_err(|_| DeError::custom(
                    concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, val)| V::from_value(val).map(|x| (k.clone(), x)))
            .collect()
    }
}
