//! Minimal offline stand-in for `serde_derive`, written against the bare
//! `proc_macro` API (no syn/quote available offline).
//!
//! Supports exactly the shapes the workspace uses:
//! - `#[derive(Serialize)]` / `#[derive(Deserialize)]` on structs with
//!   named fields and on enums whose variants are all unit variants.
//! - A function-like `json!` macro (re-exported by the vendored
//!   `serde_json`) building a `Value` from JSON-ish syntax where values
//!   may be arbitrary Rust expressions.
//!
//! Anything outside that surface panics at expansion time with a clear
//! message, which surfaces as a compile error at the offending site.

use proc_macro::{Delimiter, Group, Spacing, TokenStream, TokenTree};

struct Item {
    name: String,
    body: Body,
}

/// One named struct field as the derives see it.
struct Field {
    name: String,
    /// `#[serde(default)]`: deserialize a missing key as `Default::default()`.
    default: bool,
}

enum Body {
    /// Named struct fields, in declaration order.
    Struct(Vec<Field>),
    /// Unit enum variants, in declaration order.
    Enum(Vec<String>),
}

/// Skip leading outer attributes (`#[...]`, including expanded doc
/// comments) and a visibility modifier.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' followed by a bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("vendored serde_derive: expected struct/enum, got {t:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("vendored serde_derive: expected type name, got {t:?}"),
    };
    i += 1;
    let body_group = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
                "vendored serde_derive: generic type `{name}` is not supported; \
                 serialize via explicit Value construction instead"
            ),
            Some(_) => i += 1,
            None => panic!("vendored serde_derive: `{name}` has no braced body (tuple/unit structs unsupported)"),
        }
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_fields(body_group)),
        "enum" => Body::Enum(parse_enum_variants(body_group)),
        k => panic!("vendored serde_derive: unsupported item kind `{k}`"),
    };
    Item { name, body }
}

/// Split a brace group's tokens on commas, tracking angle-bracket depth so
/// commas inside generic arguments (e.g. `BTreeMap<K, V>`) don't split.
fn split_top_level_commas(g: &Group) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for t in g.stream() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(t);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

/// Split on top-level commas without angle tracking: used by `json!`,
/// whose segments are expressions (where `<` may be a comparison).
/// Commas inside calls/closures sit inside paren groups, which are atomic
/// token trees, so no depth tracking is needed.
fn split_expr_commas(g: &Group) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    for t in g.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => out.push(Vec::new()),
            _ => out.last_mut().unwrap().push(t),
        }
    }
    out.retain(|seg| !seg.is_empty());
    out
}

/// Does a leading attribute run contain `#[serde(default)]`? Any other
/// `#[serde(...)]` content is rejected — better a loud expansion failure
/// than silently ignoring a renamed or skipped field.
fn has_serde_default(seg: &[TokenTree]) -> bool {
    let mut i = 0;
    let mut found = false;
    while let Some(TokenTree::Punct(p)) = seg.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(attr)) = seg.get(i + 1) {
            let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
            if matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                match toks.get(1) {
                    Some(TokenTree::Group(args))
                        if args.stream().to_string().trim() == "default" =>
                    {
                        found = true;
                    }
                    _ => panic!(
                        "vendored serde_derive: only #[serde(default)] is supported, got #[{}]",
                        attr.stream()
                    ),
                }
            }
        }
        i += 2;
    }
    found
}

fn parse_struct_fields(g: &Group) -> Vec<Field> {
    split_top_level_commas(g)
        .iter()
        .map(|seg| {
            let default = has_serde_default(seg);
            let i = skip_attrs_and_vis(seg, 0);
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => Field {
                    name: id.to_string(),
                    default,
                },
                t => panic!("vendored serde_derive: expected named field, got {t:?}"),
            }
        })
        .collect()
}

fn parse_enum_variants(g: &Group) -> Vec<String> {
    split_top_level_commas(g)
        .iter()
        .map(|seg| {
            let i = skip_attrs_and_vis(seg, 0);
            let name = match seg.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                t => panic!("vendored serde_derive: expected enum variant, got {t:?}"),
            };
            if seg.len() > i + 1 {
                panic!(
                    "vendored serde_derive: only unit enum variants are supported \
                     (variant `{name}` carries data)"
                );
            }
            name
        })
        .collect()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let code = match &item.body {
        Body::Struct(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "m.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("vendored serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let code = match &item.body {
        Body::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let helper = if f.default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    let f = &f.name;
                    format!("{f}: ::serde::{helper}(m, \"{f}\")?,\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let m = match v {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             _ => return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\
                                     \"expected object for {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let s = match v {{\n\
                             ::serde::Value::String(s) => s.as_str(),\n\
                             _ => return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\
                                     \"expected string for {name}\")),\n\
                         }};\n\
                         match s {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::custom(::std::format!(\
                                     \"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("vendored serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

fn tokens_to_string(toks: &[TokenTree]) -> String {
    toks.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render a JSON-ish value to a Rust expression producing a
/// `::serde_json::Value`.
fn render_value(toks: &[TokenTree]) -> String {
    if toks.len() == 1 {
        match &toks[0] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => return render_object(g),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => return render_array(g),
            TokenTree::Ident(id) if id.to_string() == "null" => {
                return "::serde_json::Value::Null".to_string()
            }
            _ => {}
        }
    }
    // Any other token sequence is an arbitrary Rust expression.
    format!("::serde_json::to_value(&({}))", tokens_to_string(toks))
}

/// Split entry tokens at the first top-level `:` that is not part of `::`.
fn split_key_value(entry: &[TokenTree]) -> (Vec<TokenTree>, Vec<TokenTree>) {
    let mut i = 0;
    while i < entry.len() {
        if let TokenTree::Punct(p) = &entry[i] {
            if p.as_char() == ':' {
                if p.spacing() == Spacing::Joint {
                    // First half of `::` — skip the pair.
                    i += 2;
                    continue;
                }
                return (entry[..i].to_vec(), entry[i + 1..].to_vec());
            }
        }
        i += 1;
    }
    panic!(
        "vendored serde_derive: json! object entry without `:` — `{}`",
        tokens_to_string(entry)
    );
}

fn render_key(toks: &[TokenTree]) -> String {
    if toks.len() == 1 {
        if let TokenTree::Literal(l) = &toks[0] {
            let s = l.to_string();
            if s.starts_with('"') {
                return format!("::std::string::String::from({s})");
            }
        }
    }
    format!("({}).to_string()", tokens_to_string(toks))
}

fn render_object(g: &Group) -> String {
    let mut code = String::from("{ let mut object = ::serde_json::Map::new();\n");
    for entry in split_expr_commas(g) {
        let (key, value) = split_key_value(&entry);
        code.push_str(&format!(
            "object.insert({}, {});\n",
            render_key(&key),
            render_value(&value)
        ));
    }
    code.push_str("::serde_json::Value::Object(object) }");
    code
}

fn render_array(g: &Group) -> String {
    let items: Vec<String> = split_expr_commas(g)
        .iter()
        .map(|entry| render_value(entry))
        .collect();
    format!(
        "::serde_json::Value::Array(::std::vec![{}])",
        items.join(", ")
    )
}

/// `json!(...)`: build a `::serde_json::Value` from JSON-ish syntax.
#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    render_value(&toks)
        .parse()
        .expect("vendored serde_derive: json! generated invalid expression")
}
