//! Minimal offline stand-in for `serde_json`: text format (parser +
//! compact/pretty printers) over the vendored `serde`'s [`Value`] tree,
//! plus the `json!` macro (re-exported from the vendored proc-macro
//! crate).

use std::fmt;

pub use serde::{Map, Number, Value};
pub use serde_derive::json;

pub mod value {
    pub use serde::{Map, Number, Value};
}

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut s = String::new();
    v.to_value().write_compact(&mut s);
    Ok(s)
}

/// Human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_pretty(&v.to_value(), 0, &mut s);
    Ok(s)
}

/// Compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(v: &T) -> Result<Vec<u8>, Error> {
    to_string(v).map(String::into_bytes)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Parse JSON bytes into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Convert a [`Value`] tree into any deserializable type.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v).map_err(Error::from)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.extend(std::iter::repeat_n(' ', indent + STEP));
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.extend(std::iter::repeat_n(' ', indent + STEP));
                serde::write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + STEP, out);
            }
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', indent));
            out.push('}');
        }
        other => other.write_compact(out),
    }
}

// --- Parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null", Value::Null),
            b't' => self.eat_keyword("true", Value::Bool(true)),
            b'f' => self.eat_keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error::msg(format!(
                    "expected string key at byte {}",
                    self.pos
                )));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            m.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(Error::msg(format!("unknown escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar starting at pos.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "name": "lt",
            "n": 42u64,
            "neg": -7,
            "pi": 3.5,
            "flag": true,
            "nothing": null,
            "arr": [1, 2, 3],
            "nested": { "deep": [true, "x"] },
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(v["n"].as_u64(), Some(42));
        assert_eq!(v["neg"].as_i64(), Some(-7));
        assert_eq!(v["pi"].as_f64(), Some(3.5));
        assert_eq!(v["arr"].as_array().unwrap().len(), 3);
        assert_eq!(v["nested"]["deep"][1].as_str(), Some("x"));
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{not json!").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\": 1} x").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_expr_values() {
        let xs = vec![1u64, 2, 3];
        let v = json!({ "sum": xs.iter().sum::<u64>(), "len": xs.len() });
        assert_eq!(v["sum"].as_u64(), Some(6));
        assert_eq!(v["len"].as_u64(), Some(3));
        let arr = json!(xs);
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }
}
